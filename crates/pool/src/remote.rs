//! The shared pool and the per-node [`StorageBackend`] arm over it.
//!
//! A [`SharedPool`] owns one PMem partition per attached node. The
//! partitions keep the exact slot layout and persistence-event protocol
//! of the local arm — `PmemPool` neither knows nor cares that its media
//! sits behind a fabric — so crash plans, torn-write resolution and the
//! recovery scan all behave identically. What changes is the *charge
//! stream*: [`RemotePool`] wraps every slot operation and adds the
//! fabric time for the bytes that crossed the link, inflated by a
//! congestion factor that grows with the number of attached nodes
//! (they share one link into the pool; see
//! [`DeviceTiming::concurrency_efficiency`]).

use oe_core::StorageBackend;
use oe_pmem::{PmemPool, PoolConfig, SlotHeader, SlotId, HEADER_BYTES, ROOT_BYTES};
use oe_simdevice::{Cost, CostKind, DeviceTiming, Media, MediaConfig};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Fabric parameters shared by everything attached to one pool.
#[derive(Debug, Clone, Copy)]
pub struct FabricConfig {
    /// Link timing (latency/bandwidth/congestion curve). Defaults to
    /// [`DeviceTiming::cxl_fabric`].
    pub link: DeviceTiming,
    /// Compute threads adjacent to the pool that checkpoint decode /
    /// recovery scans parallelize over (the near-pool offload).
    pub near_pool_threads: u32,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            link: DeviceTiming::cxl_fabric(),
            near_pool_threads: 4,
        }
    }
}

/// A disaggregated PMem pool: one durable partition per attached node,
/// all reached over the same fabric link. The pool outlives any node —
/// that is the entire point — so partitions are owned here, not by the
/// `RemotePool` handles carved out of it.
pub struct SharedPool {
    fabric: FabricConfig,
    partitions: Mutex<HashMap<u64, Arc<Media>>>,
    /// Nodes currently attached; drives link-congestion inflation.
    attached: AtomicU32,
}

impl SharedPool {
    /// A fresh, empty pool.
    pub fn new(fabric: FabricConfig) -> Arc<Self> {
        Arc::new(Self {
            fabric,
            partitions: Mutex::new(HashMap::new()),
            attached: AtomicU32::new(0),
        })
    }

    /// The pool's fabric parameters.
    pub fn fabric(&self) -> &FabricConfig {
        &self.fabric
    }

    /// Nodes currently attached to the pool.
    pub fn attached(&self) -> u32 {
        self.attached.load(Ordering::Relaxed)
    }

    /// Congestion inflation on one node's exclusive-access link charge:
    /// the reciprocal of the link's efficiency at the current number of
    /// attached streams (1.0 when a single node owns the link).
    fn congestion(&self) -> f64 {
        1.0 / self
            .fabric
            .link
            .concurrency_efficiency(self.attached().max(1))
    }

    /// Charge a fabric read of `bytes` (one round trip).
    pub(crate) fn charge_read(&self, bytes: u64, cost: &mut Cost) {
        let ns = (self.fabric.link.read_ns(bytes) as f64 * self.congestion()) as u64;
        cost.charge(CostKind::FabricTransfer, ns);
    }

    /// Charge a fabric write of `bytes` (posted write + completion).
    pub(crate) fn charge_write(&self, bytes: u64, cost: &mut Cost) {
        let ns = (self.fabric.link.write_ns(bytes) as f64 * self.congestion()) as u64;
        cost.charge(CostKind::FabricTransfer, ns);
    }

    /// Create a fresh partition for `node_id` and attach to it. The
    /// partition media is PMem — same torn-write crash semantics as the
    /// local arm — and the pool-format root write crosses the fabric.
    ///
    /// Panics if the node already has a partition.
    pub fn create_partition(
        self: &Arc<Self>,
        node_id: u64,
        cfg: PoolConfig,
        cost: &mut Cost,
    ) -> RemotePool {
        let media = Arc::new(Media::new(MediaConfig::pmem(cfg.capacity)));
        {
            let mut g = self.partitions.lock();
            assert!(
                g.insert(node_id, Arc::clone(&media)).is_none(),
                "node {node_id} already owns a pool partition"
            );
        }
        self.attached.fetch_add(1, Ordering::Relaxed);
        let inner = PmemPool::create_on(media, cfg.payload_bytes, cost);
        self.charge_write(ROOT_BYTES, cost);
        RemotePool {
            shared: Arc::clone(self),
            node_id,
            inner,
        }
    }

    /// The durable media behind `node_id`'s partition, if any. This is
    /// what survives the node: standbys recover from it.
    pub fn partition_media(&self, node_id: u64) -> Option<Arc<Media>> {
        self.partitions.lock().get(&node_id).cloned()
    }

    /// Swap `node_id`'s partition for `media` (promotion installs the
    /// post-crash-resolution bytes here before re-attaching).
    pub(crate) fn replace_partition(&self, node_id: u64, media: Arc<Media>) {
        self.partitions.lock().insert(node_id, media);
    }

    /// Rewrap a recovered pool for `node_id` as a fresh attachment
    /// (promotion re-attaches; the dead node's handle releases its own
    /// attachment whenever it is finally dropped).
    pub(crate) fn adopt(self: &Arc<Self>, node_id: u64, inner: PmemPool) -> RemotePool {
        self.attached.fetch_add(1, Ordering::Relaxed);
        RemotePool {
            shared: Arc::clone(self),
            node_id,
            inner,
        }
    }
}

/// One node's view of the shared pool: the [`StorageBackend`] arm whose
/// slot operations traverse the fabric. Delegation first (identical
/// durable layout and media events), fabric surcharge second.
pub struct RemotePool {
    shared: Arc<SharedPool>,
    node_id: u64,
    inner: PmemPool,
}

impl RemotePool {
    /// The shared pool this partition belongs to.
    pub fn shared(&self) -> &Arc<SharedPool> {
        &self.shared
    }

    /// The owning node's id within the pool.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// On-media footprint of one slot (what a slot read moves across
    /// the fabric).
    pub fn slot_bytes(&self) -> u64 {
        self.inner.slot_bytes()
    }
}

impl Drop for RemotePool {
    fn drop(&mut self) {
        let _ = self
            .shared
            .attached
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }
}

impl StorageBackend for RemotePool {
    fn pool(&self) -> &PmemPool {
        &self.inner
    }

    fn label(&self) -> &'static str {
        "pool"
    }

    /// Volatile bookkeeping stays node-local and free; only the durable
    /// high-water extension (detected by the PMem-write op delta)
    /// crosses the fabric.
    fn alloc(&self, cost: &mut Cost) -> SlotId {
        let writes_before = cost.ops(CostKind::PmemWrite);
        let id = self.inner.alloc(cost);
        if cost.ops(CostKind::PmemWrite) > writes_before {
            self.shared.charge_write(8, cost);
        }
        id
    }

    /// The durable free mark is one small fabric write.
    fn free(&self, id: SlotId, cost: &mut Cost) {
        self.inner.free(id, cost);
        self.shared.charge_write(4, cost);
    }

    /// Two-phase slot write = payload transfer + the 4-byte valid flip,
    /// each a fabric round trip (the flip cannot be posted behind the
    /// payload: its durability ordering is the crash-safety protocol).
    fn write_slot(&self, id: SlotId, key: u64, version: u64, payload: &[f32], cost: &mut Cost) {
        self.inner.write_slot(id, key, version, payload, cost);
        self.shared
            .charge_write(HEADER_BYTES + payload.len() as u64 * 4, cost);
        self.shared.charge_write(4, cost);
    }

    /// A slot read pulls the whole slot across the link.
    fn read_slot(&self, id: SlotId, out: &mut [f32], cost: &mut Cost) -> Option<SlotHeader> {
        let h = self.inner.read_slot(id, out, cost);
        self.shared.charge_read(self.inner.slot_bytes(), cost);
        h
    }

    /// Checkpoint commit: one 8-byte durable fabric write.
    fn set_checkpoint_id(&self, id: u64, cost: &mut Cost) {
        self.inner.set_checkpoint_id(id, cost);
        self.shared.charge_write(8, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_cfg() -> PoolConfig {
        PoolConfig {
            payload_bytes: 32,
            capacity: 1 << 16,
        }
    }

    #[test]
    fn every_slot_op_charges_the_fabric() {
        let shared = SharedPool::new(FabricConfig::default());
        let mut cost = Cost::new();
        let store = shared.create_partition(1, pool_cfg(), &mut cost);
        let create_ops = cost.ops(CostKind::FabricTransfer);
        assert!(create_ops > 0, "pool format crosses the fabric");

        let id = store.alloc(&mut cost); // first alloc extends high water
        store.write_slot(id, 9, 1, &[1.5; 8], &mut cost);
        let mut out = [0f32; 8];
        store.read_slot(id, &mut out, &mut cost).unwrap();
        store.set_checkpoint_id(1, &mut cost);
        store.free(id, &mut cost);
        assert_eq!(out, [1.5; 8]);
        // create + hw-extend + (payload + flip) + read + ckpt + free
        assert_eq!(cost.ops(CostKind::FabricTransfer), create_ops + 6);
        assert!(cost.ns(CostKind::FabricTransfer) > 0);
    }

    #[test]
    fn delegated_media_stream_is_identical_to_local() {
        // The durable protocol under the fabric is byte-for-byte the
        // local one: same persistence events, same media bytes.
        let shared = SharedPool::new(FabricConfig::default());
        let mut rc = Cost::new();
        let remote = shared.create_partition(1, pool_cfg(), &mut rc);
        let mut lc = Cost::new();
        let local = PmemPool::create(pool_cfg(), &mut lc);

        let mut a = Cost::new();
        let mut b = Cost::new();
        let rid = remote.alloc(&mut a);
        let lid = local.alloc(&mut b);
        remote.write_slot(rid, 3, 2, &[0.5; 8], &mut a);
        local.write_slot(lid, 3, 2, &[0.5; 8], &mut b);
        assert_eq!(rid, lid);
        assert_eq!(
            remote.pool().media().persistence_events(),
            local.media().persistence_events()
        );
        // Non-fabric charges match exactly; fabric rides on top.
        for kind in [CostKind::PmemWrite, CostKind::PmemRead, CostKind::Cpu] {
            assert_eq!(a.ns(kind), b.ns(kind), "{kind:?}");
        }
        assert!(a.ns(CostKind::FabricTransfer) > 0);
        assert_eq!(b.ns(CostKind::FabricTransfer), 0);
    }

    #[test]
    fn congestion_inflates_with_attached_nodes() {
        let shared = SharedPool::new(FabricConfig::default());
        let mut cost = Cost::new();
        let solo = shared.create_partition(1, pool_cfg(), &mut cost);
        let mut one = Cost::new();
        solo.shared().charge_read(4096, &mut one);

        let _others: Vec<RemotePool> = (2..=8)
            .map(|i| shared.create_partition(i, pool_cfg(), &mut cost))
            .collect();
        let mut crowded = Cost::new();
        solo.shared().charge_read(4096, &mut crowded);
        assert!(
            crowded.ns(CostKind::FabricTransfer) > one.ns(CostKind::FabricTransfer),
            "8 attached nodes congest the link: {} vs {}",
            crowded.ns(CostKind::FabricTransfer),
            one.ns(CostKind::FabricTransfer)
        );
    }

    #[test]
    fn detach_releases_the_link() {
        let shared = SharedPool::new(FabricConfig::default());
        let mut cost = Cost::new();
        let a = shared.create_partition(1, pool_cfg(), &mut cost);
        let b = shared.create_partition(2, pool_cfg(), &mut cost);
        assert_eq!(shared.attached(), 2);
        drop(b);
        assert_eq!(shared.attached(), 1);
        // The partition itself survives detach: the pool owns it.
        assert!(shared.partition_media(2).is_some());
        drop(a);
        assert_eq!(shared.attached(), 0);
    }
}
