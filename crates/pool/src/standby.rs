//! Replica promotion across the pool: recovery from pool-resident
//! durable bytes, no crash image shipped.
//!
//! With local PMem, a standby ([`oe_net::CheckpointReplica`]) must hold
//! (a handle to) the dead primary's media — operationally that means a
//! crash image crosses the network before recovery can even begin.
//! With the pool, the dead node's partition is *already* durable on the
//! other side of the fabric. Promotion therefore:
//!
//! 1. resolves the partition's in-flight fabric writes exactly like a
//!    power cut (flushed-but-unfenced lines land torn, seeded);
//! 2. runs the recovery scan + index rebuild **near the pool** on
//!    [`FabricConfig::near_pool_threads`] — zero per-slot fabric
//!    traffic (this is the checkpoint-decode offload);
//! 3. ships only the rebuilt index summary (16 bytes per live entry:
//!    key + slot) to the promoted node over the fabric;
//! 4. re-attaches the partition as a [`RemotePool`] backend and spawns
//!    the promoted server.
//!
//! The trainer-visible contract is identical to checkpoint-replica
//! failover: the timeline rewinds to the committed checkpoint and
//! replays bit-identically.

use crate::remote::{RemotePool, SharedPool};
use oe_core::{NodeConfig, PsNode};
use oe_net::failover::{recovery_burst_ns, spawn_promoted, Promotion, Standby};
use oe_net::{Error, ServerHandle};
use oe_pmem::scan::recover as pmem_recover;
use oe_simdevice::{Cost, CostKind, Media};
use parking_lot::Mutex;
use std::sync::Arc;

/// Bytes shipped per recovered entry when the near-pool scan hands the
/// rebuilt index to the promoted node: key (8) + slot id (8).
const INDEX_SUMMARY_BYTES_PER_ENTRY: u64 = 16;

/// A standby whose state *is* the pool partition: promotes a dead
/// pool-backed PS by recovering near the pool and re-attaching.
pub struct PoolStandby {
    shared: Arc<SharedPool>,
    node_id: u64,
    cfg: NodeConfig,
    /// Server worker threads for the promoted node.
    service_threads: usize,
    /// Seed resolving the partition's torn in-flight lines.
    crash_seed: u64,
    /// Keeps the promoted server's workers alive.
    handle: Mutex<Option<ServerHandle>>,
}

impl PoolStandby {
    /// Build a standby for `node_id`'s partition of `shared`. `cfg`
    /// must match the primary's pool layout, as any recovery must.
    pub fn new(
        shared: Arc<SharedPool>,
        node_id: u64,
        cfg: NodeConfig,
        service_threads: usize,
        crash_seed: u64,
    ) -> Self {
        Self {
            shared,
            node_id,
            cfg,
            service_threads,
            crash_seed,
            handle: Mutex::new(None),
        }
    }
}

impl Standby for PoolStandby {
    fn promote(&self) -> Result<Promotion, Error> {
        let media = self
            .shared
            .partition_media(self.node_id)
            .ok_or_else(|| Error::rejected("node owns no pool partition"))?;
        // The node died mid-flight: writes it had pushed into the
        // fabric/pool buffers but not fenced resolve as torn lines,
        // exactly as local PMem resolves a power cut.
        let media = Arc::new(Media::from_crash(media.crash(self.crash_seed)));

        // Near-pool recovery: scan + prune + index rebuild execute on
        // compute adjacent to the pool, so nothing here crosses the
        // fabric per slot.
        let mut cost = Cost::new();
        let (pool, scan) = pmem_recover(Arc::clone(&media), &mut cost)
            .ok_or_else(|| Error::rejected("pool partition holds no initialized pool"))?;
        let mut recovery_ns = recovery_burst_ns(&cost, self.shared.fabric().near_pool_threads);

        // Only the rebuilt index summary crosses the link.
        let summary_bytes = (INDEX_SUMMARY_BYTES_PER_ENTRY * scan.live.len() as u64).max(64);
        let mut ship = Cost::new();
        self.shared.charge_read(summary_bytes, &mut ship);
        recovery_ns += ship.ns(CostKind::FabricTransfer);

        // Re-attach: the post-resolution bytes become the partition,
        // and the promoted node adopts the dead node's attachment.
        self.shared.replace_partition(self.node_id, media);
        let store: Arc<RemotePool> = Arc::new(self.shared.adopt(self.node_id, pool));
        let resume_batch = scan.checkpoint_id;
        let recovered_keys = scan.live.len();
        let node = PsNode::from_recovered_storage(self.cfg.clone(), store, &scan);

        let (transport, handle) = spawn_promoted(Arc::new(node), self.service_threads);
        *self.handle.lock() = Some(handle);
        Ok(Promotion {
            transport,
            resume_batch,
            recovery_ns,
            recovered_keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::FabricConfig;
    use oe_core::engine::PsEngine;
    use oe_core::OptimizerKind;
    use oe_pmem::PoolConfig;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 1.0 };
        c
    }

    fn pool_node(shared: &Arc<SharedPool>, node_id: u64) -> PsNode {
        let mut cost = Cost::new();
        let c = cfg();
        let store = shared.create_partition(
            node_id,
            PoolConfig {
                payload_bytes: c.payload_bytes(),
                capacity: c.pmem_capacity,
            },
            &mut cost,
        );
        PsNode::with_storage(c, Arc::new(store))
    }

    fn step(n: &PsNode, keys: &[u64], b: u64) {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(keys, b, &mut out, &mut cost);
        n.end_pull_phase(b);
        n.push(keys, &vec![0.5; keys.len() * 4], b, &mut cost);
    }

    #[test]
    fn promotes_from_pool_resident_bytes_to_committed_checkpoint() {
        let shared = SharedPool::new(FabricConfig::default());
        let primary = pool_node(&shared, 7);
        let keys: Vec<u64> = (0..16).collect();
        step(&primary, &keys, 1);
        primary.request_checkpoint(1);
        step(&primary, &keys, 2); // commits 1 during maintenance
        step(&primary, &keys, 3); // uncommitted, lost with the node
        drop(primary); // node dies; partition survives in the pool

        let standby = PoolStandby::new(Arc::clone(&shared), 7, cfg(), 2, 99);
        let promo = standby.promote().expect("promotes from the pool");
        assert_eq!(promo.resume_batch, 1);
        assert_eq!(promo.recovered_keys, 16);
        assert!(promo.recovery_ns > 0);
        // The pool still carries exactly one attachment (adopted).
        assert_eq!(shared.attached(), 1);
    }

    #[test]
    fn unknown_partition_refuses_promotion() {
        let shared = SharedPool::new(FabricConfig::default());
        let standby = PoolStandby::new(shared, 42, cfg(), 1, 0);
        let err = standby.promote().unwrap_err();
        assert!(!err.is_retryable());
    }

    #[test]
    fn near_pool_recovery_beats_shipping_every_slot() {
        // The recovery charge must not scale with fabric-per-slot
        // traffic: it is a near-pool scan plus one summary ship.
        let shared = SharedPool::new(FabricConfig::default());
        let primary = pool_node(&shared, 1);
        let keys: Vec<u64> = (0..200).collect();
        step(&primary, &keys, 1);
        primary.request_checkpoint(1);
        step(&primary, &keys, 2);
        drop(primary);

        let standby = PoolStandby::new(Arc::clone(&shared), 1, cfg(), 1, 3);
        let promo = standby.promote().unwrap();
        // Upper bound: what shipping every live slot would charge on
        // the fabric alone (exclusive link), ignoring the scan.
        let link = shared.fabric().link;
        let slot_bytes = 64u64; // ≥ header+payload rounded for dim 4
        let ship_all: u64 = (0..promo.recovered_keys)
            .map(|_| link.read_ns(slot_bytes))
            .sum();
        assert!(
            promo.recovery_ns < ship_all * 4,
            "near-pool recovery {} should not look like per-slot shipping {}",
            promo.recovery_ns,
            ship_all
        );
    }
}
