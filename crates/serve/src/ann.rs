//! Approximate nearest-neighbor candidate retrieval over snapshot rows.
//!
//! Serving answers "nearest items for this user", not only point
//! lookups. The [`Retriever`] trait abstracts the candidate-generation
//! strategy over an immutable [`Snapshot`]; two arms ship:
//!
//! - [`ExactScan`] — the reference arm: dot-product over every row,
//!   exact by construction, `O(n·dim)` per query;
//! - [`LshRetriever`] — random-hyperplane LSH: a per-snapshot
//!   [`LshIndex`] (built at flip time, immutable like everything else
//!   in the snapshot) buckets rows by sign-signature in several hash
//!   tables; a query probes its own bucket plus the lowest-margin
//!   single-bit flips (multiprobe), then scores only the candidates
//!   exactly. Sub-linear candidate fractions buy the latency win; the
//!   recall floor is pinned by `crates/serve/tests/ann_recall.rs`.
//!
//! Both arms return `(Vec<TopK>, Cost)` — the unified serve-path cost
//! convention — and order ties deterministically by `(score desc, key
//! asc)` so exact-vs-ANN recall comparisons are reproducible.

use crate::snapshot_handle::Snapshot;
use oe_core::config::{HASH_PROBE_NS, OPT_FLOP_NS_PER_F32};
use oe_simdevice::{Cost, CostKind, DeviceTiming};
use std::collections::HashMap;

/// A scored recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Item key.
    pub key: u64,
    /// Dot-product score against the query embedding.
    pub score: f32,
}

/// Candidate-retrieval strategy over a snapshot.
pub trait Retriever: Send + Sync {
    /// Stable arm name (bench/report label).
    fn name(&self) -> &'static str;

    /// The top `k` rows by dot product with `query`, highest first,
    /// ties broken by ascending key, plus the retrieval's virtual cost.
    fn top_k(&self, snap: &Snapshot, query: &[f32], k: usize) -> (Vec<TopK>, Cost);
}

/// Deterministic tie-break: score descending, then key ascending.
fn sort_scored(scored: &mut Vec<TopK>, k: usize) {
    scored.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.key.cmp(&b.key)));
    scored.truncate(k);
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Charge the virtual cost of scoring `rows` candidate rows of width
/// `dim`: one fused multiply-add lane per f32 plus the DRAM traffic of
/// streaming the rows through the scorer.
fn charge_scan(cost: &mut Cost, rows: usize, dim: usize) {
    cost.charge(
        CostKind::Cpu,
        rows as u64 * dim as u64 * OPT_FLOP_NS_PER_F32,
    );
    DeviceTiming::dram().charge_read(rows as u64 * dim as u64 * 4, cost);
}

/// The reference arm: exact dot-product scan over every row.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactScan;

impl Retriever for ExactScan {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn top_k(&self, snap: &Snapshot, query: &[f32], k: usize) -> (Vec<TopK>, Cost) {
        assert_eq!(query.len(), snap.dim(), "query dim mismatch");
        let mut cost = Cost::new();
        let n = snap.num_keys();
        charge_scan(&mut cost, n, snap.dim());
        let mut scored = Vec::with_capacity(n);
        for row in 0..n as u32 {
            scored.push(TopK {
                key: snap.key_of_row(row),
                score: dot(query, snap.row(row)),
            });
        }
        sort_scored(&mut scored, k);
        (scored, cost)
    }
}

/// Random-hyperplane LSH shape: `tables` independent hash tables of
/// `bits`-bit sign signatures, probing the home bucket plus the
/// `probes` lowest-margin single-bit flips per table.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnConfig {
    /// Independent hash tables (more tables → higher recall).
    pub tables: usize,
    /// Signature bits per table (more bits → smaller buckets).
    pub bits: usize,
    /// Extra buckets probed per table (lowest-|margin| bit flips).
    pub probes: usize,
    /// Hyperplane seed; the index is a pure function of
    /// `(rows, config)`.
    pub seed: u64,
}

impl AnnConfig {
    /// Default shape: comfortably above the 0.9 recall@10 floor on the
    /// skewed workload while scoring a sub-linear candidate fraction.
    pub fn paper_default() -> Self {
        Self {
            tables: 8,
            bits: 8,
            probes: 6,
            seed: 0x0A11,
        }
    }

    /// A `t`×`b` shape with `p` probes (bench sweeps).
    pub fn shaped(tables: usize, bits: usize, probes: usize) -> Self {
        Self {
            tables,
            bits,
            probes,
            ..Self::paper_default()
        }
    }

    /// Bench/report label, e.g. `lsh-8x8p6`.
    pub fn label(&self) -> String {
        format!("lsh-{}x{}p{}", self.tables, self.bits, self.probes)
    }
}

/// splitmix64 — deterministic hyperplane components without an RNG
/// dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in [-1, 1) from a seed word.
fn unit(x: u64) -> f32 {
    (splitmix64(x) >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
}

/// Per-snapshot LSH index: immutable, built at flip time, owned by the
/// snapshot it indexes.
pub struct LshIndex {
    config: AnnConfig,
    dim: usize,
    rows: usize,
    /// `tables × bits × dim` hyperplane components.
    planes: Vec<f32>,
    /// Per table: signature → row ids.
    buckets: Vec<HashMap<u32, Vec<u32>>>,
}

impl LshIndex {
    /// Build over a row arena (`rows.len() == keys.len() ×
    /// payload_f32s`; only the `dim` weight prefix of each row is
    /// hashed). Returns the index and its build cost — charged to the
    /// snapshot build, not to queries.
    pub fn build(
        rows: &[f32],
        keys: &[u64],
        dim: usize,
        payload_f32s: usize,
        config: &AnnConfig,
    ) -> (Self, Cost) {
        assert!(config.tables >= 1 && config.bits >= 1 && config.bits <= 32);
        assert!(config.probes <= config.bits);
        let mut cost = Cost::new();
        let n = keys.len();
        let planes: Vec<f32> = (0..config.tables * config.bits * dim)
            .map(|i| unit(config.seed.wrapping_add(i as u64)))
            .collect();
        let mut buckets = vec![HashMap::new(); config.tables];
        let mut index = Self {
            config: config.clone(),
            dim,
            rows: n,
            planes,
            buckets: Vec::new(),
        };
        for row in 0..n {
            let v = &rows[row * payload_f32s..row * payload_f32s + dim];
            for (t, bucket) in buckets.iter_mut().enumerate() {
                let (sig, _) = index.signature(t, v);
                bucket.entry(sig).or_insert_with(Vec::new).push(row as u32);
            }
        }
        // Hashing every row through every table is the build bill.
        cost.charge(
            CostKind::Cpu,
            (n * config.tables * config.bits * dim) as u64 * OPT_FLOP_NS_PER_F32,
        );
        DeviceTiming::dram().charge_read((n * dim * 4) as u64, &mut cost);
        index.buckets = buckets;
        (index, cost)
    }

    /// The shape this index was built with.
    pub fn config(&self) -> &AnnConfig {
        &self.config
    }

    /// Rows indexed.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Sign signature of `v` in table `t`, plus per-bit margins
    /// (|dot| per bit, for multiprobe ordering).
    fn signature(&self, t: usize, v: &[f32]) -> (u32, Vec<f32>) {
        let bits = self.config.bits;
        let mut sig = 0u32;
        let mut margins = Vec::with_capacity(bits);
        for b in 0..bits {
            let start = (t * bits + b) * self.dim;
            let d = dot(v, &self.planes[start..start + self.dim]);
            if d >= 0.0 {
                sig |= 1 << b;
            }
            margins.push(d.abs());
        }
        (sig, margins)
    }

    /// Candidate row ids for `query`: home bucket plus the `probes`
    /// lowest-margin single-bit flips, per table, deduplicated.
    /// Deterministic for a given `(index, query)`.
    pub fn candidates(&self, query: &[f32]) -> Vec<u32> {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let mut seen = vec![false; self.rows];
        let mut out = Vec::new();
        let visit = |sig: u32, t: usize, seen: &mut Vec<bool>, out: &mut Vec<u32>| {
            if let Some(rows) = self.buckets[t].get(&sig) {
                for &row in rows {
                    if !seen[row as usize] {
                        seen[row as usize] = true;
                        out.push(row);
                    }
                }
            }
        };
        for t in 0..self.config.tables {
            let (sig, margins) = self.signature(t, query);
            visit(sig, t, &mut seen, &mut out);
            // Multiprobe: flip the bits the query was least sure about.
            let mut order: Vec<usize> = (0..self.config.bits).collect();
            order.sort_unstable_by(|&a, &b| margins[a].total_cmp(&margins[b]));
            for &bit in order.iter().take(self.config.probes) {
                visit(sig ^ (1 << bit), t, &mut seen, &mut out);
            }
        }
        out
    }

    /// Virtual cost of hashing one query through every table.
    fn probe_cost(&self) -> Cost {
        let mut cost = Cost::new();
        cost.charge(
            CostKind::Cpu,
            (self.config.tables * self.config.bits * self.dim) as u64 * OPT_FLOP_NS_PER_F32
                + (self.config.tables * (1 + self.config.probes)) as u64 * HASH_PROBE_NS,
        );
        cost
    }
}

impl std::fmt::Debug for LshIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LshIndex")
            .field("config", &self.config)
            .field("rows", &self.rows)
            .finish()
    }
}

/// The ANN arm: retrieves through the snapshot's [`LshIndex`]. A
/// snapshot built without an index degrades to [`ExactScan`] (the
/// reference arm is always safe) — benches and tests pin the index
/// present.
#[derive(Debug, Default, Clone, Copy)]
pub struct LshRetriever;

impl Retriever for LshRetriever {
    fn name(&self) -> &'static str {
        "lsh"
    }

    fn top_k(&self, snap: &Snapshot, query: &[f32], k: usize) -> (Vec<TopK>, Cost) {
        let Some(index) = snap.ann_index() else {
            return ExactScan.top_k(snap, query, k);
        };
        assert_eq!(query.len(), snap.dim(), "query dim mismatch");
        let mut cost = index.probe_cost();
        let candidates = index.candidates(query);
        charge_scan(&mut cost, candidates.len(), snap.dim());
        let mut scored: Vec<TopK> = candidates
            .into_iter()
            .map(|row| TopK {
                key: snap.key_of_row(row),
                score: dot(query, snap.row(row)),
            })
            .collect();
        sort_scored(&mut scored, k);
        (scored, cost)
    }
}

/// Recall@k of `approx` against ground-truth `exact` (both top-k key
/// lists): the fraction of exact keys the approximate arm recovered.
pub fn recall_at_k(exact: &[TopK], approx: &[TopK]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact
        .iter()
        .filter(|e| approx.iter().any(|a| a.key == e.key))
        .count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_pmem::PmemPool;
    use oe_simdevice::{Media, MediaConfig};
    use std::sync::Arc;

    const DIM: usize = 8;

    /// Deterministic pseudo-random embeddings with enough geometry for
    /// LSH to be meaningful.
    fn snapshot(n: u64, ann: Option<&AnnConfig>) -> Snapshot {
        let media = Arc::new(Media::new(MediaConfig::pmem(4 << 20)));
        let mut cost = Cost::new();
        let pool = PmemPool::create_on(Arc::clone(&media), DIM * 4, &mut cost);
        for key in 0..n {
            let id = pool.alloc(&mut cost);
            let mut payload: Vec<f32> = (0..DIM)
                .map(|d| unit(key.wrapping_mul(31).wrapping_add(d as u64 * 7)))
                .collect();
            // Unit-normalize so self-dot = 1.0 is the exact maximum
            // (Cauchy-Schwarz) — makes ground truth unambiguous.
            let norm = payload.iter().map(|x| x * x).sum::<f32>().sqrt();
            payload.iter_mut().for_each(|x| *x /= norm);
            pool.write_slot(id, key, 1, &payload, &mut cost);
        }
        pool.set_checkpoint_id(1, &mut cost);
        Snapshot::build(media.crash(7), DIM, ann).expect("build")
    }

    #[test]
    fn exact_scan_ranks_self_first() {
        let snap = snapshot(200, None);
        let (query, _) = snap.lookup(42);
        let query = query.unwrap().to_vec();
        let (top, cost) = ExactScan.top_k(&snap, &query, 5);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].key, 42, "self-similarity wins: {top:?}");
        assert!(top.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(cost.total_ns() > 0);
    }

    #[test]
    fn lsh_candidates_are_sublinear_and_deterministic() {
        let cfg = AnnConfig::paper_default();
        let snap = snapshot(1_000, Some(&cfg));
        let index = snap.ann_index().expect("index built at flip time");
        assert_eq!(index.num_rows(), 1_000);
        let (query, _) = snap.lookup(17);
        let query = query.unwrap().to_vec();
        let c1 = index.candidates(&query);
        let c2 = index.candidates(&query);
        assert_eq!(c1, c2, "pure function of (index, query)");
        assert!(
            c1.len() < 1_000,
            "candidate set must be sublinear: {}",
            c1.len()
        );
        assert!(!c1.is_empty(), "home bucket holds at least the query row");
    }

    #[test]
    fn lsh_recall_beats_floor_and_costs_less_than_exact() {
        let cfg = AnnConfig::paper_default();
        let snap = snapshot(2_000, Some(&cfg));
        let mut recalls = Vec::new();
        let mut exact_ns = 0u64;
        let mut ann_ns = 0u64;
        for key in (0..2_000u64).step_by(97) {
            let query = snap.lookup(key).0.unwrap().to_vec();
            let (exact, ce) = ExactScan.top_k(&snap, &query, 10);
            let (approx, ca) = LshRetriever.top_k(&snap, &query, 10);
            recalls.push(recall_at_k(&exact, &approx));
            exact_ns += ce.total_ns();
            ann_ns += ca.total_ns();
        }
        let mean = recalls.iter().sum::<f64>() / recalls.len() as f64;
        assert!(mean >= 0.9, "mean recall@10 = {mean:.3}");
        assert!(
            ann_ns < exact_ns,
            "ANN virtual cost must beat the exact scan: {ann_ns} vs {exact_ns}"
        );
    }

    #[test]
    fn lsh_without_index_degrades_to_exact() {
        let snap = snapshot(100, None);
        let query = snap.lookup(3).0.unwrap().to_vec();
        let (exact, _) = ExactScan.top_k(&snap, &query, 7);
        let (fallback, _) = LshRetriever.top_k(&snap, &query, 7);
        assert_eq!(exact, fallback);
    }

    #[test]
    fn recall_helper_counts_overlap() {
        let mk = |keys: &[u64]| -> Vec<TopK> {
            keys.iter().map(|&key| TopK { key, score: 0.0 }).collect()
        };
        assert_eq!(recall_at_k(&mk(&[1, 2, 3, 4]), &mk(&[1, 2, 9, 4])), 0.75);
        assert_eq!(recall_at_k(&mk(&[]), &mk(&[1])), 1.0);
    }
}
