//! `oectl` — operations CLI for pool snapshot images.
//!
//! ```sh
//! oectl info   <image>          # header + recovery summary
//! oectl scan   <image>          # per-key listing (key, slot, version)
//! oectl verify <image>          # checksum-verify every live slot
//! oectl dump   <image> <key>    # full payload of one key
//! oectl top    <image> <key> k  # top-k nearest items to <key>'s embedding
//!                               # (--ann scores through the LSH index)
//! oectl metrics <image>         # replay a smoke workload, print telemetry
//! ```
//!
//! Images are produced with `oe_serve::save_image` (see the quickstart
//! example) — a checkpointed pool's persistence-domain bytes.

use oe_pmem::scan::recover;
use oe_serve::{load_image, AnnConfig, ExactScan, LshRetriever, Retriever, ServingNode, Snapshot};
use oe_simdevice::{Cost, Media};
use std::path::Path;
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage:\n  oectl info    <image>\n  oectl scan    <image> [limit]\n  oectl verify  <image>\n  oectl dump    <image> <key>\n  oectl top     <image> <key> [k] [--ann]\n  oectl metrics <image> [batches]"
    );
    exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let ann = args.iter().any(|a| a == "--ann");
    args.retain(|a| a != "--ann");
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), Path::new(p)),
        _ => usage(),
    };
    let image = match load_image(path) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("oectl: cannot load {}: {e}", path.display());
            exit(1);
        }
    };

    let mut cost = Cost::new();
    match cmd {
        "info" => {
            let media = Arc::new(Media::from_crash(image));
            let Some((pool, report)) = recover(media, &mut cost) else {
                eprintln!("oectl: no initialized pool in image");
                exit(1);
            };
            println!("image          : {}", path.display());
            println!("pool           : {}", pool.describe());
            println!("checkpoint     : batch {}", report.checkpoint_id);
            println!("live entries   : {}", report.live.len());
            println!(
                "discarded      : {} future, {} stale",
                report.discarded_future, report.discarded_stale
            );
            println!("corrupt slots  : {}", report.corrupt);
            println!("scan footprint : {:.2} MB", report.scan_bytes as f64 / 1e6);
            println!("recovery cost  : {cost}");
        }
        "scan" => {
            let limit: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50);
            let media = Arc::new(Media::from_crash(image));
            let Some((_pool, report)) = recover(media, &mut cost) else {
                eprintln!("oectl: no initialized pool in image");
                exit(1);
            };
            println!("{:<16} {:<10} {:<10}", "key", "slot", "version");
            for r in report.live.iter().take(limit) {
                println!("{:<16} {:<10} {:<10}", r.key, r.id.0, r.version);
            }
            if report.live.len() > limit {
                println!(
                    "… {} more (pass a limit to see them)",
                    report.live.len() - limit
                );
            }
        }
        "verify" => {
            let media = Arc::new(Media::from_crash(image));
            let Some((pool, report)) = recover(media, &mut cost) else {
                eprintln!("oectl: no initialized pool in image");
                exit(1);
            };
            let mut payload = vec![0f32; pool.payload_f32s()];
            let mut ok = 0u64;
            let mut bad = 0u64;
            for r in &report.live {
                match pool.read_slot(r.id, &mut payload, &mut cost) {
                    Some(h) if h.key == r.key && h.version == r.version => ok += 1,
                    _ => {
                        bad += 1;
                        eprintln!("BAD slot {} (key {})", r.id.0, r.key);
                    }
                }
            }
            println!("verified {ok} entries, {bad} bad");
            if bad > 0 {
                exit(1);
            }
        }
        "dump" => {
            let key: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let node = open_serving(image, false);
            let (payload, c) = node.snapshot().payload(key);
            cost.merge(&c);
            match payload {
                Some(p) => {
                    println!("key {key} @ checkpoint {}", node.checkpoint());
                    println!("weights : {:?}", &p[..node.dim().min(p.len())]);
                    if p.len() > node.dim() {
                        println!("opt state: {:?}", &p[node.dim()..]);
                    }
                }
                None => {
                    eprintln!("oectl: key {key} not found");
                    exit(1);
                }
            }
        }
        "top" => {
            let key: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let k: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);
            let node = open_serving(image, ann);
            // The query is a borrow into the snapshot arena — no copy.
            let (query, c) = node.snapshot().lookup(key);
            cost.merge(&c);
            let Some(query) = query else {
                eprintln!("oectl: key {key} not found");
                exit(1);
            };
            let retriever: &dyn Retriever = if ann { &LshRetriever } else { &ExactScan };
            let (top, c) = node.retrieve(query, k, retriever);
            cost.merge(&c);
            println!(
                "top-{k} items by dot product with key {key} ({}):",
                retriever.name()
            );
            for t in top {
                println!("  key {:<12} score {:+.6}", t.key, t.score);
            }
        }
        "metrics" => {
            let batches: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
            metrics(image, batches, &mut cost);
        }
        _ => usage(),
    }
}

/// Recover the image into a full training node, replay a smoke workload
/// against it through the RPC stack, and print the combined telemetry
/// exposition (server registry + engine registry). This exercises every
/// recording path end to end: rpc decode/execute spans, pull/push/
/// maintain/flush/checkpoint histograms, and the engine counters.
fn metrics(image: oe_simdevice::CrashImage, batches: u64, cost: &mut Cost) {
    use oe_core::recovery::recover_node;
    use oe_core::{NodeConfig, OptimizerKind, PsEngine};
    use oe_net::{loopback, NetConfig, PsServer, RemotePs};

    let media = Arc::new(Media::from_crash(image));
    let Some((pool, report)) = recover(Arc::clone(&media), cost) else {
        eprintln!("oectl: no initialized pool in image");
        exit(1);
    };
    // Infer the training layout from the payload width: AdaGrad stores
    // one accumulator per weight (payload = 2 * dim), SGD stores none.
    let payload = pool.payload_f32s();
    let cfg = if payload % 2 == 0 {
        NodeConfig::small(payload / 2)
    } else {
        let mut c = NodeConfig::small(payload);
        c.optimizer = OptimizerKind::Sgd { lr: 0.05 };
        c
    };
    drop(pool);
    let keys: Vec<u64> = report.live.iter().map(|r| r.key).collect();
    if keys.is_empty() {
        eprintln!("oectl: image holds no live entries, nothing to replay");
        exit(1);
    }
    let resume = report.checkpoint_id;
    let Some((node, _)) = recover_node(media, cfg.clone(), cost) else {
        eprintln!("oectl: recovery failed");
        exit(1);
    };

    let engine: Arc<dyn PsEngine> = Arc::new(node);
    let (client_t, server_t) = loopback(64);
    let handle = PsServer::spawn(engine, server_t, 2);
    let remote = RemotePs::connect(Arc::new(client_t), NetConfig::paper_default());

    let grads = vec![0.0f32; keys.len() * cfg.dim];
    let mut out = Vec::new();
    for b in resume + 1..=resume + batches {
        out.clear();
        remote.pull(&keys, b, &mut out, cost);
        remote.end_pull_phase(b);
        // Zero gradients: the replay must not perturb the model.
        remote.push(&keys, &grads, b, cost);
    }
    remote.request_checkpoint(resume + batches);
    out.clear();
    remote.pull(&keys, resume + batches + 1, &mut out, cost);
    remote.end_pull_phase(resume + batches + 1);

    print!("{}", remote.metrics_text());
    drop(remote);
    handle.join();
}

fn open_serving(image: oe_simdevice::CrashImage, ann: bool) -> ServingNode {
    let mut cost = Cost::new();
    // The payload layout stores dim + optimizer state; serve the weight
    // prefix. We infer dim = payload/2 for AdaGrad-style layouts and
    // fall back to the full payload; `dump` prints everything anyway.
    let media = Arc::new(Media::from_crash(image.clone()));
    let Some((pool, _)) = recover(media, &mut cost) else {
        eprintln!("oectl: no initialized pool in image");
        exit(1);
    };
    let dim = pool.payload_f32s();
    let cfg = AnnConfig::paper_default();
    let snapshot = Snapshot::build(image, dim, ann.then_some(&cfg)).unwrap_or_else(|| {
        eprintln!("oectl: no initialized pool in image");
        exit(1)
    });
    ServingNode::from_snapshot(Arc::new(snapshot))
}
