//! # oe-serve
//!
//! Serving-side tooling for the parameter server — the paper's system
//! backs "real-time recommendation services" (§III) and its deployment
//! story includes hand-off from training to inference:
//!
//! - [`snapshot`] — durable image files: a crashed/checkpointed pool's
//!   persistence-domain bytes serialized to disk, so checkpoints become
//!   artifacts that can be copied, archived, and inspected;
//! - [`serving`] — [`serving::ServingNode`]: opens an image (or live
//!   crashed media) read-only at its committed checkpoint, serves
//!   embedding lookups through a small hot cache, and scores
//!   dot-product top-k recommendations;
//! - `oectl` — the operations CLI: `info`, `scan`, `verify`, `top`
//!   over image files (see `src/bin/oectl.rs`).

pub mod serving;
pub mod snapshot;

pub use serving::{ServingNode, TopK};
pub use snapshot::{load_image, save_image};
