//! # oe-serve
//!
//! The serving plane — the paper's system backs "real-time
//! recommendation services" (§III); this crate makes that hand-off a
//! first-class, concurrent, SLO-measured product:
//!
//! - [`snapshot`] — durable image files: a crashed/checkpointed pool's
//!   persistence-domain bytes serialized to disk, so checkpoints become
//!   artifacts that can be copied, archived, and inspected;
//! - [`snapshot_handle`] — the concurrent read path:
//!   [`snapshot_handle::Snapshot`] (an image decoded once into an
//!   immutable DRAM row arena; every read is a `&self` borrow paired
//!   with its virtual [`oe_simdevice::Cost`]),
//!   [`snapshot_handle::SnapshotHandle`] (epoch-flipped publication —
//!   a checkpoint commit swaps all readers to the new image atomically
//!   mid-traffic; the steady-state read path is one atomic load), and
//!   [`snapshot_handle::CheckpointPublisher`] (wires
//!   `CheckpointScheduler`-driven commits to `save_image` + flip);
//! - [`ann`] — candidate retrieval behind the [`ann::Retriever`]
//!   trait: [`ann::ExactScan`] (reference arm) and
//!   [`ann::LshRetriever`] over a per-snapshot random-hyperplane
//!   [`ann::LshIndex`] built at flip time;
//! - [`serving`] — [`serving::ServingNode`]: the single-image read
//!   surface, a thin wrapper over a snapshot;
//! - `oectl` — the operations CLI: `info`, `scan`, `verify`, `dump`,
//!   `top [--ann]`, `metrics` over image files (see
//!   `src/bin/oectl.rs`).
//!
//! The redesigned read API is kept honest mechanically: this crate
//! denies `clippy::ptr_arg` and `clippy::needless_pass_by_ref_mut`,
//! so a `&mut` parameter that the borrow-returning surface does not
//! actually need fails CI.

#![deny(clippy::ptr_arg)]
#![deny(clippy::needless_pass_by_ref_mut)]

pub mod ann;
pub mod serving;
pub mod snapshot;
pub mod snapshot_handle;

pub use ann::{recall_at_k, AnnConfig, ExactScan, LshIndex, LshRetriever, Retriever, TopK};
pub use serving::ServingNode;
pub use snapshot::{load_image, save_image};
pub use snapshot_handle::{CheckpointPublisher, Snapshot, SnapshotHandle, SnapshotReader};
