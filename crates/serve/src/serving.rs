//! Read-only serving node (compatibility surface).
//!
//! [`ServingNode`] predates the concurrent serving plane: it served
//! point lookups from one static image through `&mut Vec` out-params.
//! It is now a thin wrapper over an immutable
//! [`Snapshot`](crate::snapshot_handle::Snapshot) — the image is
//! decoded once into a DRAM row arena at open time — and its
//! out-param methods are **deprecated shims** kept for one release.
//! New code reads through the borrow-returning `Snapshot` API (and
//! [`crate::snapshot_handle::SnapshotHandle`] for concurrent,
//! flip-on-checkpoint serving):
//!
//! ```text
//! old: node.lookup(key, &mut out, &mut cost) -> bool
//! new: node.snapshot().lookup(key)           -> (Option<&[f32]>, Cost)
//! old: node.top_k(&q, &candidates, k, &mut cost)
//! new: node.retrieve(&q, k, &ExactScan)      -> (Vec<TopK>, Cost)
//! ```

use crate::ann::Retriever;
use crate::snapshot_handle::Snapshot;
use oe_core::BatchId;
use oe_simdevice::{Cost, CrashImage};
use oe_telemetry::{Counter, Phase, PhaseTimes, Registry};
use std::sync::Arc;

pub use crate::ann::TopK;

/// Read-only embedding server over a decoded snapshot.
pub struct ServingNode {
    snapshot: Arc<Snapshot>,
    registry: Arc<Registry>,
    phases: PhaseTimes,
    hits: Counter,
    unknown: Counter,
}

impl ServingNode {
    /// Open an image at its committed checkpoint. `dim` must match the
    /// training configuration. The whole image is decoded into a DRAM
    /// row arena up front (cost charged to `cost` once); reads are
    /// then pure borrows. Returns `None` if the image holds no
    /// initialized pool.
    ///
    /// `_cache_entries` is vestigial: the decoded arena made the
    /// miss-path hot cache redundant. Kept so existing callers compile
    /// unchanged for one release.
    pub fn open(
        image: CrashImage,
        dim: usize,
        _cache_entries: usize,
        cost: &mut Cost,
    ) -> Option<Self> {
        let snapshot = Arc::new(Snapshot::build(image, dim, None)?);
        cost.merge(snapshot.build_cost());
        Some(Self::from_snapshot(snapshot))
    }

    /// Serve an already-built snapshot (shares it with any
    /// [`crate::snapshot_handle::SnapshotHandle`] holding the same Arc).
    pub fn from_snapshot(snapshot: Arc<Snapshot>) -> Self {
        let registry = Arc::new(Registry::new());
        let phases = PhaseTimes::new(&registry, "", &[Phase::ServeLookup, Phase::ServeTopk]);
        let hits = registry.counter("serve_hits_total");
        let unknown = registry.counter("serve_unknown_keys_total");
        Self {
            snapshot,
            registry,
            phases,
            hits,
            unknown,
        }
    }

    /// The underlying immutable snapshot — the borrow-returning read
    /// surface.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The serving node's telemetry registry (lookup/top-k latency
    /// histograms, hit/unknown counters).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Prometheus-style text exposition (what `oectl metrics` prints
    /// for a serving node).
    pub fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    /// Batch id the served model corresponds to.
    pub fn checkpoint(&self) -> BatchId {
        self.snapshot.checkpoint()
    }

    /// Embedding dimension served.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// Distinct keys available.
    pub fn num_keys(&self) -> usize {
        self.snapshot.num_keys()
    }

    /// Look up one embedding: a borrow into the snapshot arena plus
    /// the read's virtual cost, with serve telemetry recorded.
    pub fn get(&self, key: u64) -> (Option<&[f32]>, Cost) {
        let _span = self.phases.span(Phase::ServeLookup);
        let (value, cost) = self.snapshot.lookup(key);
        match value {
            Some(_) => self.hits.inc(),
            None => self.unknown.inc(),
        }
        (value, cost)
    }

    /// Top-`k` retrieval with an explicit [`Retriever`] arm, recorded
    /// under `serve_topk_latency_ns`.
    pub fn retrieve(
        &self,
        query: &[f32],
        k: usize,
        retriever: &dyn Retriever,
    ) -> (Vec<TopK>, Cost) {
        let _span = self.phases.span(Phase::ServeTopk);
        retriever.top_k(&self.snapshot, query, k)
    }

    /// Look up one embedding into `out` (`dim` values appended).
    /// Returns false (and appends zeros — the standard missing-feature
    /// convention) if the key is unknown.
    #[deprecated(note = "use `snapshot().lookup(key)` — borrow-returning, `(value, Cost)` pair")]
    pub fn lookup(&self, key: u64, out: &mut Vec<f32>, cost: &mut Cost) -> bool {
        let (value, c) = self.get(key);
        cost.merge(&c);
        match value {
            Some(row) => {
                out.extend_from_slice(row);
                true
            }
            None => {
                out.extend(std::iter::repeat_n(0.0, self.dim()));
                false
            }
        }
    }

    /// Look up many embeddings.
    #[deprecated(note = "use `snapshot().lookup(key)` per key — borrows, no out-params")]
    #[allow(deprecated)]
    pub fn lookup_many(&self, keys: &[u64], out: &mut Vec<f32>, cost: &mut Cost) -> usize {
        keys.iter().filter(|&&k| self.lookup(k, out, cost)).count()
    }

    /// Score `candidates` against a query embedding by dot product and
    /// return the top `k`, highest first.
    #[deprecated(
        note = "use `retrieve(query, k, &ExactScan)` (or an ANN arm) — `(value, Cost)` pair"
    )]
    pub fn top_k(&self, query: &[f32], candidates: &[u64], k: usize, cost: &mut Cost) -> Vec<TopK> {
        // Exact scan restricted to `candidates`, preserving the old
        // contract (unknown candidates skipped, not zero-filled).
        assert_eq!(query.len(), self.dim(), "query dim mismatch");
        let _span = self.phases.span(Phase::ServeTopk);
        let mut scored: Vec<TopK> = Vec::with_capacity(candidates.len());
        for &key in candidates {
            let (value, c) = self.snapshot.lookup(key);
            cost.merge(&c);
            if let Some(row) = value {
                let score = query.iter().zip(row).map(|(q, e)| q * e).sum();
                scored.push(TopK { key, score });
            }
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.key.cmp(&b.key)));
        scored.truncate(k);
        scored
    }

    /// Iterate all served keys (ascending).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.snapshot.keys().iter().copied()
    }

    /// Read the full payload of a key.
    #[deprecated(note = "use `snapshot().payload(key)` — borrows instead of allocating per call")]
    pub fn read_payload(&self, key: u64, cost: &mut Cost) -> Option<Vec<f32>> {
        let (value, c) = self.snapshot.payload(key);
        cost.merge(&c);
        value.map(<[f32]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::ExactScan;
    use oe_core::engine::PsEngine;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    const DIM: usize = 4;

    fn trained_image() -> (CrashImage, Vec<Vec<f32>>) {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.5 };
        let node = PsNode::new(cfg);
        let keys: Vec<u64> = (0..50).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        for b in 1..=3 {
            out.clear();
            node.pull(&keys, b, &mut out, &mut cost);
            node.end_pull_phase(b);
            // Per-key distinct gradients so embeddings diverge (top-k
            // scoring needs a non-degenerate geometry).
            let grads: Vec<f32> = keys
                .iter()
                .flat_map(|&k| (0..DIM).map(move |d| ((k * 31 + d as u64 * 17) as f32).sin() * 0.3))
                .collect();
            node.push(&keys, &grads, b, &mut cost);
        }
        node.request_checkpoint(3);
        out.clear();
        node.pull(&keys, 4, &mut out, &mut cost);
        node.end_pull_phase(4);
        let weights = keys
            .iter()
            .map(|&k| node.read_weights(k).unwrap())
            .collect();
        (node.pool().media().crash(13), weights)
    }

    #[test]
    fn serves_checkpointed_weights() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).expect("open");
        assert!(cost.total_ns() > 0, "open charges the decode scan");
        assert_eq!(node.checkpoint(), 3);
        assert_eq!(node.num_keys(), 50);
        for (k, w) in expected.iter().enumerate() {
            let (row, read_cost) = node.get(k as u64);
            assert_eq!(row.unwrap(), w.as_slice(), "key {k}");
            assert!(read_cost.total_ns() > 0, "reads report their cost");
            // Repeated reads borrow the same arena row.
            assert_eq!(node.get(k as u64).0.unwrap(), w.as_slice());
        }
    }

    #[test]
    fn unknown_keys_are_none_not_zeros() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 4, &mut cost).unwrap();
        let (missing, miss_cost) = node.get(999_999);
        assert!(missing.is_none());
        assert!(miss_cost.total_ns() > 0, "probes still cost");
        // The caller picks its missing-feature convention; the snapshot
        // no longer zero-fills for it.
        let (present, _) = node.get(1);
        assert!(present.is_some());
    }

    #[test]
    fn retrieve_ranks_by_dot_product() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 64, &mut cost).unwrap();
        // Query = the embedding of key 7: its own score must rank top
        // among all candidates.
        let query = expected[7].clone();
        let (top, retrieve_cost) = node.retrieve(&query, 5, &ExactScan);
        assert_eq!(top.len(), 5);
        let self_score: f32 = query.iter().map(|v| v * v).sum();
        assert!(
            top.iter()
                .any(|t| t.key == 7 && (t.score - self_score).abs() < 1e-5),
            "key 7 in its own top-5: {top:?}"
        );
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(retrieve_cost.total_ns() > 0);
    }

    #[test]
    fn telemetry_counts_hits_and_unknowns() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).unwrap();
        node.get(1);
        node.get(1);
        node.get(2);
        node.get(999_999); // unknown
        let snap = node.registry().snapshot();
        assert_eq!(snap.counter("serve_hits_total"), Some(3));
        assert_eq!(snap.counter("serve_unknown_keys_total"), Some(1));
        let lookups = snap.histogram("serve_lookup_latency_ns").expect("hist");
        assert_eq!(lookups.count(), 4, "every lookup path records a span");
        let _ = node.retrieve(&[1.0; DIM], 2, &ExactScan);
        let snap = node.registry().snapshot();
        assert_eq!(snap.histogram("serve_topk_latency_ns").unwrap().count(), 1);
        let text = node.metrics_text();
        assert!(text.contains("serve_hits_total"), "text:\n{text}");
        assert!(
            text.contains("serve_lookup_latency_ns{quantile=\"0.99\"}"),
            "text:\n{text}"
        );
    }

    /// The deprecated out-param shims stay behaviorally identical to
    /// the borrow API for one release.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_agree_with_the_borrow_api() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).unwrap();

        // lookup: appends the row, true on hit.
        let mut out = Vec::new();
        assert!(node.lookup(7, &mut out, &mut cost));
        assert_eq!(out, expected[7]);
        // unknown: zero-fill convention preserved.
        let mut out = Vec::new();
        assert!(!node.lookup(999_999, &mut out, &mut cost));
        assert_eq!(out, vec![0.0; DIM]);

        // lookup_many counts hits and concatenates.
        let mut out = Vec::new();
        let found = node.lookup_many(&[1, 999_999, 2], &mut out, &mut cost);
        assert_eq!(found, 2);
        assert_eq!(out.len(), 3 * DIM);

        // top_k over an explicit candidate set matches retrieve()
        // restricted to those candidates.
        let query = expected[7].clone();
        let candidates: Vec<u64> = (0..50).collect();
        let old = node.top_k(&query, &candidates, 5, &mut cost);
        let (new, _) = node.retrieve(&query, 5, &ExactScan);
        assert_eq!(
            old.iter().map(|t| t.key).collect::<Vec<_>>(),
            new.iter().map(|t| t.key).collect::<Vec<_>>(),
            "same ranking from shim and borrow API"
        );

        // read_payload clones what payload() borrows.
        let cloned = node.read_payload(3, &mut cost).unwrap();
        assert_eq!(cloned.as_slice(), node.snapshot().payload(3).0.unwrap());
    }

    #[test]
    fn keys_iterate_ascending() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 2, &mut cost).unwrap();
        let keys: Vec<u64> = node.keys().collect();
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
