//! Read-only serving node.
//!
//! [`ServingNode`] is a thin wrapper over an immutable
//! [`Snapshot`](crate::snapshot_handle::Snapshot) — the image is
//! decoded once into a DRAM row arena at open time; reads are then
//! borrow-returning `(value, Cost)` pairs ([`ServingNode::get`],
//! [`ServingNode::retrieve`]). Use
//! [`crate::snapshot_handle::SnapshotHandle`] for concurrent,
//! flip-on-checkpoint serving. The pre-snapshot out-param shims
//! (`lookup`/`lookup_many`/`top_k`/`read_payload`) lived out their one
//! deprecation release and are gone.

use crate::ann::Retriever;
use crate::snapshot_handle::Snapshot;
use oe_core::BatchId;
use oe_simdevice::{Cost, CrashImage};
use oe_telemetry::{Counter, Phase, PhaseTimes, Registry};
use std::sync::Arc;

pub use crate::ann::TopK;

/// Read-only embedding server over a decoded snapshot.
pub struct ServingNode {
    snapshot: Arc<Snapshot>,
    registry: Arc<Registry>,
    phases: PhaseTimes,
    hits: Counter,
    unknown: Counter,
}

impl ServingNode {
    /// Open an image at its committed checkpoint. `dim` must match the
    /// training configuration. The whole image is decoded into a DRAM
    /// row arena up front (cost charged to `cost` once); reads are
    /// then pure borrows. Returns `None` if the image holds no
    /// initialized pool.
    ///
    /// `_cache_entries` is vestigial: the decoded arena made the
    /// miss-path hot cache redundant. Kept so existing callers compile
    /// unchanged for one release.
    pub fn open(
        image: CrashImage,
        dim: usize,
        _cache_entries: usize,
        cost: &mut Cost,
    ) -> Option<Self> {
        let snapshot = Arc::new(Snapshot::build(image, dim, None)?);
        cost.merge(snapshot.build_cost());
        Some(Self::from_snapshot(snapshot))
    }

    /// Serve an already-built snapshot (shares it with any
    /// [`crate::snapshot_handle::SnapshotHandle`] holding the same Arc).
    pub fn from_snapshot(snapshot: Arc<Snapshot>) -> Self {
        let registry = Arc::new(Registry::new());
        let phases = PhaseTimes::new(&registry, "", &[Phase::ServeLookup, Phase::ServeTopk]);
        let hits = registry.counter("serve_hits_total");
        let unknown = registry.counter("serve_unknown_keys_total");
        Self {
            snapshot,
            registry,
            phases,
            hits,
            unknown,
        }
    }

    /// The underlying immutable snapshot — the borrow-returning read
    /// surface.
    pub fn snapshot(&self) -> &Arc<Snapshot> {
        &self.snapshot
    }

    /// The serving node's telemetry registry (lookup/top-k latency
    /// histograms, hit/unknown counters).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Prometheus-style text exposition (what `oectl metrics` prints
    /// for a serving node).
    pub fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    /// Batch id the served model corresponds to.
    pub fn checkpoint(&self) -> BatchId {
        self.snapshot.checkpoint()
    }

    /// Embedding dimension served.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// Distinct keys available.
    pub fn num_keys(&self) -> usize {
        self.snapshot.num_keys()
    }

    /// Look up one embedding: a borrow into the snapshot arena plus
    /// the read's virtual cost, with serve telemetry recorded.
    pub fn get(&self, key: u64) -> (Option<&[f32]>, Cost) {
        let _span = self.phases.span(Phase::ServeLookup);
        let (value, cost) = self.snapshot.lookup(key);
        match value {
            Some(_) => self.hits.inc(),
            None => self.unknown.inc(),
        }
        (value, cost)
    }

    /// Top-`k` retrieval with an explicit [`Retriever`] arm, recorded
    /// under `serve_topk_latency_ns`.
    pub fn retrieve(
        &self,
        query: &[f32],
        k: usize,
        retriever: &dyn Retriever,
    ) -> (Vec<TopK>, Cost) {
        let _span = self.phases.span(Phase::ServeTopk);
        retriever.top_k(&self.snapshot, query, k)
    }

    /// Iterate all served keys (ascending).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.snapshot.keys().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ann::ExactScan;
    use oe_core::engine::PsEngine;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    const DIM: usize = 4;

    fn trained_image() -> (CrashImage, Vec<Vec<f32>>) {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.5 };
        let node = PsNode::new(cfg);
        let keys: Vec<u64> = (0..50).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        for b in 1..=3 {
            out.clear();
            node.pull(&keys, b, &mut out, &mut cost);
            node.end_pull_phase(b);
            // Per-key distinct gradients so embeddings diverge (top-k
            // scoring needs a non-degenerate geometry).
            let grads: Vec<f32> = keys
                .iter()
                .flat_map(|&k| (0..DIM).map(move |d| ((k * 31 + d as u64 * 17) as f32).sin() * 0.3))
                .collect();
            node.push(&keys, &grads, b, &mut cost);
        }
        node.request_checkpoint(3);
        out.clear();
        node.pull(&keys, 4, &mut out, &mut cost);
        node.end_pull_phase(4);
        let weights = keys
            .iter()
            .map(|&k| node.read_weights(k).unwrap())
            .collect();
        (node.pool().media().crash(13), weights)
    }

    #[test]
    fn serves_checkpointed_weights() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).expect("open");
        assert!(cost.total_ns() > 0, "open charges the decode scan");
        assert_eq!(node.checkpoint(), 3);
        assert_eq!(node.num_keys(), 50);
        for (k, w) in expected.iter().enumerate() {
            let (row, read_cost) = node.get(k as u64);
            assert_eq!(row.unwrap(), w.as_slice(), "key {k}");
            assert!(read_cost.total_ns() > 0, "reads report their cost");
            // Repeated reads borrow the same arena row.
            assert_eq!(node.get(k as u64).0.unwrap(), w.as_slice());
        }
    }

    #[test]
    fn unknown_keys_are_none_not_zeros() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 4, &mut cost).unwrap();
        let (missing, miss_cost) = node.get(999_999);
        assert!(missing.is_none());
        assert!(miss_cost.total_ns() > 0, "probes still cost");
        // The caller picks its missing-feature convention; the snapshot
        // no longer zero-fills for it.
        let (present, _) = node.get(1);
        assert!(present.is_some());
    }

    #[test]
    fn retrieve_ranks_by_dot_product() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 64, &mut cost).unwrap();
        // Query = the embedding of key 7: its own score must rank top
        // among all candidates.
        let query = expected[7].clone();
        let (top, retrieve_cost) = node.retrieve(&query, 5, &ExactScan);
        assert_eq!(top.len(), 5);
        let self_score: f32 = query.iter().map(|v| v * v).sum();
        assert!(
            top.iter()
                .any(|t| t.key == 7 && (t.score - self_score).abs() < 1e-5),
            "key 7 in its own top-5: {top:?}"
        );
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(retrieve_cost.total_ns() > 0);
    }

    #[test]
    fn telemetry_counts_hits_and_unknowns() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).unwrap();
        node.get(1);
        node.get(1);
        node.get(2);
        node.get(999_999); // unknown
        let snap = node.registry().snapshot();
        assert_eq!(snap.counter("serve_hits_total"), Some(3));
        assert_eq!(snap.counter("serve_unknown_keys_total"), Some(1));
        let lookups = snap.histogram("serve_lookup_latency_ns").expect("hist");
        assert_eq!(lookups.count(), 4, "every lookup path records a span");
        let _ = node.retrieve(&[1.0; DIM], 2, &ExactScan);
        let snap = node.registry().snapshot();
        assert_eq!(snap.histogram("serve_topk_latency_ns").unwrap().count(), 1);
        let text = node.metrics_text();
        assert!(text.contains("serve_hits_total"), "text:\n{text}");
        assert!(
            text.contains("serve_lookup_latency_ns{quantile=\"0.99\"}"),
            "text:\n{text}"
        );
    }

    #[test]
    fn keys_iterate_ascending() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 2, &mut cost).unwrap();
        let keys: Vec<u64> = node.keys().collect();
        assert_eq!(keys.len(), 50);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }
}
