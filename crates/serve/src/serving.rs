//! Read-only serving node.
//!
//! Opens a pool image (or crashed media) at its committed checkpoint and
//! serves lookups for online inference — the downstream half of the
//! paper's deployment ("real-time recommendation services for customers
//! visiting their online shop", §III). The node is immutable: a serving
//! replica never interferes with training, and a new checkpoint image
//! swaps in atomically by constructing a fresh node.

use oe_cache::{DramArena, EvictionPolicy, PolicyKind};
use oe_core::BatchId;
use oe_pmem::scan::recover;
use oe_pmem::{PmemPool, SlotId};
use oe_simdevice::{Cost, CrashImage, Media};
use oe_telemetry::{Counter, Phase, PhaseTimes, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A scored recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Item key.
    pub key: u64,
    /// Dot-product score against the query embedding.
    pub score: f32,
}

struct ServeCache {
    arena: DramArena,
    policy: Box<dyn EvictionPolicy>,
    slot_of: HashMap<u64, u32>,
}

/// Read-only embedding server over a recovered pool.
pub struct ServingNode {
    pool: PmemPool,
    index: HashMap<u64, SlotId>,
    dim: usize,
    checkpoint: BatchId,
    cache: Mutex<ServeCache>,
    registry: Arc<Registry>,
    phases: PhaseTimes,
    hits: Counter,
    misses: Counter,
    unknown: Counter,
}

impl ServingNode {
    /// Open an image at its committed checkpoint. `dim` must match the
    /// training configuration; `cache_entries` sizes the hot cache.
    /// Returns `None` if the image holds no initialized pool.
    pub fn open(
        image: CrashImage,
        dim: usize,
        cache_entries: usize,
        cost: &mut Cost,
    ) -> Option<Self> {
        let media = Arc::new(Media::from_crash(image));
        let (pool, report) = recover(media, cost)?;
        assert!(
            pool.payload_f32s() >= dim,
            "image payload smaller than requested dim"
        );
        let index = report.live.iter().map(|r| (r.key, r.id)).collect();
        let cap = cache_entries.max(1);
        let registry = Arc::new(Registry::new());
        let phases = PhaseTimes::new(&registry, "", &[Phase::ServeLookup, Phase::ServeTopk]);
        let hits = registry.counter("serve_cache_hits_total");
        let misses = registry.counter("serve_cache_misses_total");
        let unknown = registry.counter("serve_unknown_keys_total");
        Some(Self {
            dim,
            checkpoint: report.checkpoint_id,
            cache: Mutex::new(ServeCache {
                arena: DramArena::new(cap, pool.payload_f32s()),
                policy: PolicyKind::Lru.build(cap),
                slot_of: HashMap::new(),
            }),
            pool,
            index,
            registry,
            phases,
            hits,
            misses,
            unknown,
        })
    }

    /// The serving node's telemetry registry (lookup/top-k latency
    /// histograms, hit/miss/unknown counters).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Prometheus-style text exposition (what `oectl metrics` prints
    /// for a serving node).
    pub fn metrics_text(&self) -> String {
        self.registry.render_text()
    }

    /// Batch id the served model corresponds to.
    pub fn checkpoint(&self) -> BatchId {
        self.checkpoint
    }

    /// Embedding dimension served.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Distinct keys available.
    pub fn num_keys(&self) -> usize {
        self.index.len()
    }

    /// Look up one embedding into `out` (`dim` values appended).
    /// Returns false (and appends zeros — the standard missing-feature
    /// convention) if the key is unknown.
    pub fn lookup(&self, key: u64, out: &mut Vec<f32>, cost: &mut Cost) -> bool {
        // Wall-clock span: a cache hit charges no virtual cost, so
        // serve-path tails are measured in real time.
        let _span = self.phases.span(Phase::ServeLookup);
        let Some(&pm_slot) = self.index.get(&key) else {
            out.extend(std::iter::repeat_n(0.0, self.dim));
            self.unknown.inc();
            return false;
        };
        let mut cache = self.cache.lock();
        if let Some(&slot) = cache.slot_of.get(&key) {
            out.extend_from_slice(&cache.arena.payload(slot)[..self.dim]);
            cache.policy.on_access(slot);
            self.hits.inc();
            return true;
        }
        self.misses.inc();
        // Miss: read from PMem, install in the hot cache.
        if cache.arena.is_full() {
            if let Some(victim) = cache.policy.evict() {
                let vkey = cache.arena.key(victim);
                cache.slot_of.remove(&vkey);
                cache.arena.remove(victim);
            }
        }
        let slot = cache.arena.insert(key, 0).expect("slot available");
        let ServeCache { arena, .. } = &mut *cache;
        self.pool
            .read_slot(pm_slot, arena.payload_mut(slot), cost)
            .expect("recovered slot valid");
        cache.slot_of.insert(key, slot);
        cache.policy.on_insert(slot);
        out.extend_from_slice(&cache.arena.payload(slot)[..self.dim]);
        true
    }

    /// Look up many embeddings.
    pub fn lookup_many(&self, keys: &[u64], out: &mut Vec<f32>, cost: &mut Cost) -> usize {
        keys.iter().filter(|&&k| self.lookup(k, out, cost)).count()
    }

    /// Score `candidates` against a query embedding by dot product and
    /// return the top `k`, highest first — the last mile of a
    /// retrieval-style recommender.
    pub fn top_k(&self, query: &[f32], candidates: &[u64], k: usize, cost: &mut Cost) -> Vec<TopK> {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let _span = self.phases.span(Phase::ServeTopk);
        let mut scored: Vec<TopK> = Vec::with_capacity(candidates.len());
        let mut emb = Vec::with_capacity(self.dim);
        for &key in candidates {
            emb.clear();
            if !self.lookup(key, &mut emb, cost) {
                continue;
            }
            let score = query.iter().zip(&emb).map(|(q, e)| q * e).sum();
            scored.push(TopK { key, score });
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));
        scored.truncate(k);
        scored
    }

    /// Iterate all (key, version) pairs (oectl scan).
    pub fn entries(&self) -> impl Iterator<Item = (u64, SlotId)> + '_ {
        self.index.iter().map(|(&k, &s)| (k, s))
    }

    /// Read the full payload of a key (oectl dump).
    pub fn read_payload(&self, key: u64, cost: &mut Cost) -> Option<Vec<f32>> {
        let slot = *self.index.get(&key)?;
        let mut payload = vec![0f32; self.pool.payload_f32s()];
        self.pool.read_slot(slot, &mut payload, cost)?;
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::engine::PsEngine;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};

    const DIM: usize = 4;

    fn trained_image() -> (CrashImage, Vec<Vec<f32>>) {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.5 };
        let node = PsNode::new(cfg);
        let keys: Vec<u64> = (0..50).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        for b in 1..=3 {
            out.clear();
            node.pull(&keys, b, &mut out, &mut cost);
            node.end_pull_phase(b);
            // Per-key distinct gradients so embeddings diverge (top-k
            // scoring needs a non-degenerate geometry).
            let grads: Vec<f32> = keys
                .iter()
                .flat_map(|&k| (0..DIM).map(move |d| ((k * 31 + d as u64 * 17) as f32).sin() * 0.3))
                .collect();
            node.push(&keys, &grads, b, &mut cost);
        }
        node.request_checkpoint(3);
        out.clear();
        node.pull(&keys, 4, &mut out, &mut cost);
        node.end_pull_phase(4);
        let weights = keys
            .iter()
            .map(|&k| node.read_weights(k).unwrap())
            .collect();
        (node.pool().media().crash(13), weights)
    }

    #[test]
    fn serves_checkpointed_weights() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).expect("open");
        assert_eq!(node.checkpoint(), 3);
        assert_eq!(node.num_keys(), 50);
        for (k, w) in expected.iter().enumerate() {
            let mut out = Vec::new();
            assert!(node.lookup(k as u64, &mut out, &mut cost));
            assert_eq!(&out, w, "key {k}");
            // Second lookup hits the hot cache, same result.
            let mut out2 = Vec::new();
            node.lookup(k as u64, &mut out2, &mut cost);
            assert_eq!(out, out2);
        }
    }

    #[test]
    fn unknown_keys_yield_zeros() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 4, &mut cost).unwrap();
        let mut out = Vec::new();
        assert!(!node.lookup(999_999, &mut out, &mut cost));
        assert_eq!(out, vec![0.0; DIM]);
        let mut out = Vec::new();
        let found = node.lookup_many(&[1, 999_999, 2], &mut out, &mut cost);
        assert_eq!(found, 2);
        assert_eq!(out.len(), 3 * DIM);
    }

    #[test]
    fn top_k_ranks_by_dot_product() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 64, &mut cost).unwrap();
        // Query = the embedding of key 7: its own score must rank top
        // among candidates including itself.
        let query = expected[7].clone();
        let candidates: Vec<u64> = (0..50).collect();
        let top = node.top_k(&query, &candidates, 5, &mut cost);
        assert_eq!(top.len(), 5);
        let self_score: f32 = query.iter().map(|v| v * v).sum();
        assert!(
            top.iter()
                .any(|t| t.key == 7 && (t.score - self_score).abs() < 1e-5),
            "key 7 in its own top-5: {top:?}"
        );
        // Sorted descending.
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn telemetry_counts_hits_misses_and_unknowns() {
        let (image, _) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 16, &mut cost).unwrap();
        let mut out = Vec::new();
        node.lookup(1, &mut out, &mut cost); // miss (cold cache)
        node.lookup(1, &mut out, &mut cost); // hit
        node.lookup(2, &mut out, &mut cost); // miss
        node.lookup(999_999, &mut out, &mut cost); // unknown
        let snap = node.registry().snapshot();
        assert_eq!(snap.counter("serve_cache_hits_total"), Some(1));
        assert_eq!(snap.counter("serve_cache_misses_total"), Some(2));
        assert_eq!(snap.counter("serve_unknown_keys_total"), Some(1));
        let lookups = snap.histogram("serve_lookup_latency_ns").expect("hist");
        assert_eq!(lookups.count(), 4, "every lookup path records a span");
        let _ = node.top_k(&[1.0; DIM], &[1, 2, 3], 2, &mut cost);
        let snap = node.registry().snapshot();
        assert_eq!(snap.histogram("serve_topk_latency_ns").unwrap().count(), 1);
        let text = node.metrics_text();
        assert!(text.contains("serve_cache_hits_total"), "text:\n{text}");
        assert!(
            text.contains("serve_lookup_latency_ns{quantile=\"0.99\"}"),
            "text:\n{text}"
        );
    }

    #[test]
    fn tiny_cache_still_correct_under_churn() {
        let (image, expected) = trained_image();
        let mut cost = Cost::new();
        let node = ServingNode::open(image, DIM, 2, &mut cost).unwrap();
        for round in 0..3 {
            for (k, w) in expected.iter().enumerate() {
                let mut out = Vec::new();
                node.lookup(k as u64, &mut out, &mut cost);
                assert_eq!(&out, w, "round {round} key {k}");
            }
        }
    }
}
