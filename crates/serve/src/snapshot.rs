//! Durable snapshot image files.
//!
//! A [`CrashImage`] is the persistence-domain contents of a pool at a
//! crash (or clean shutdown) point. Serializing it to disk turns
//! checkpoints into operable artifacts: copy them to backup storage
//! (the paper's "remote storage in large periods" tier), inspect them
//! with `oectl`, or open them read-only with a
//! [`crate::serving::ServingNode`].
//!
//! File format (little-endian):
//!
//! ```text
//! "OEIMG1" (6 B) | device u8 | reserved u8 | len u64 | bytes …
//! ```

use oe_simdevice::{CrashImage, DeviceKind};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 6] = b"OEIMG1";

/// Snapshot I/O errors.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// Not an image file / corrupted header.
    BadFormat(&'static str),
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io: {e}"),
            SnapshotError::BadFormat(m) => write!(f, "bad image: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn device_tag(kind: DeviceKind) -> u8 {
    match kind {
        DeviceKind::Dram => 0,
        DeviceKind::Pmem => 1,
        DeviceKind::FlashSsd => 2,
        DeviceKind::CxlFabric => 3,
    }
}

fn device_from_tag(tag: u8) -> Result<DeviceKind, SnapshotError> {
    match tag {
        0 => Ok(DeviceKind::Dram),
        1 => Ok(DeviceKind::Pmem),
        2 => Ok(DeviceKind::FlashSsd),
        3 => Ok(DeviceKind::CxlFabric),
        _ => Err(SnapshotError::BadFormat("unknown device tag")),
    }
}

/// Write an image to `path` (atomic-enough: write then rename is left to
/// the caller's deployment tooling; this writes directly).
pub fn save_image(image: &CrashImage, path: &Path) -> Result<(), SnapshotError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(MAGIC)?;
    f.write_all(&[device_tag(image.device()), 0])?;
    f.write_all(&(image.bytes().len() as u64).to_le_bytes())?;
    f.write_all(image.bytes())?;
    f.sync_all()?;
    Ok(())
}

/// Read an image from `path`.
pub fn load_image(path: &Path) -> Result<CrashImage, SnapshotError> {
    let mut f = std::fs::File::open(path)?;
    let mut header = [0u8; 16];
    f.read_exact(&mut header)?;
    if &header[0..6] != MAGIC {
        return Err(SnapshotError::BadFormat("magic mismatch"));
    }
    let device = device_from_tag(header[6])?;
    let len = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut bytes = vec![0u8; len];
    f.read_exact(&mut bytes)?;
    Ok(CrashImage::from_parts(bytes, device))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_simdevice::{Cost, Media, MediaConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("oe_snapshot_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn image_roundtrips_through_disk() {
        let media = Media::new(MediaConfig::pmem(4096));
        let mut cost = Cost::new();
        media.write(100, b"persisted payload", &mut cost);
        media.persist(100, 17, &mut cost);
        let image = media.crash(1);

        let path = tmp("roundtrip");
        save_image(&image, &path).unwrap();
        let back = load_image(&path).unwrap();
        assert_eq!(back.bytes(), image.bytes());
        assert_eq!(back.device(), image.device());

        // And it rehydrates into working media.
        let m2 = Media::from_crash(back);
        let mut buf = [0u8; 17];
        m2.read(100, &mut buf, &mut cost);
        assert_eq!(&buf, b"persisted payload");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_garbage_files() {
        let path = tmp("garbage");
        std::fs::write(&path, b"definitely not an image").unwrap();
        assert!(matches!(
            load_image(&path),
            Err(SnapshotError::BadFormat(_))
        ));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_image(Path::new("/nonexistent/oe.img")),
            Err(SnapshotError::Io(_))
        ));
    }
}
