//! Lock-free multi-reader snapshot serving.
//!
//! The serving plane's unit of consistency is an immutable [`Snapshot`]:
//! a checkpoint image decoded once into a contiguous DRAM row arena, a
//! key→row index, and (optionally) a per-snapshot ANN retrieval index.
//! Every read method takes `&self` and returns a *borrow* into the
//! arena — no out-params, no per-call allocation, no interior locking —
//! paired with the virtual [`Cost`] of the read, unifying serve-path
//! cost reporting with the rest of the system.
//!
//! A [`SnapshotHandle`] publishes snapshots to concurrent readers with
//! an epoch flip: a checkpoint commit from training builds the next
//! snapshot off to the side, then [`SnapshotHandle::flip`] swaps it in
//! atomically mid-traffic. Readers hold a [`SnapshotReader`] that
//! caches an `Arc<Snapshot>`; the steady-state read path is **one
//! atomic epoch load** — the handle's mutex is touched only once per
//! flip per reader, to re-clone the Arc. Because snapshots are
//! immutable and swapped whole, a reader can never observe a torn mix
//! of two checkpoints: whatever epoch it holds, every row it returns
//! belongs to exactly one committed checkpoint
//! (`crates/serve/tests/snapshot_flip.rs` proves this under 100
//! mid-traffic flips).
//!
//! [`CheckpointPublisher`] wires the flip to the training side's
//! checkpoint flow ([`oe_core::CheckpointScheduler`] →
//! `request_checkpoint` → commit): at every batch boundary it notices a
//! newly committed checkpoint id, captures the persistence domain,
//! optionally archives it with [`crate::snapshot::save_image`], builds
//! the next snapshot (ANN index included), and flips.

use crate::ann::{AnnConfig, LshIndex};
use crate::snapshot::save_image;
use oe_core::config::HASH_PROBE_NS;
use oe_core::{BatchId, PsEngine, PsNode};
use oe_pmem::scan::recover;
use oe_simdevice::{Cost, CostKind, CrashImage, DeviceTiming, Media};
use oe_telemetry::{Counter, Phase, PhaseTimes, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable, fully-decoded checkpoint image: the serving plane's
/// unit of atomicity. All read methods take `&self` and return borrows
/// into one contiguous row arena.
pub struct Snapshot {
    checkpoint: BatchId,
    dim: usize,
    payload_f32s: usize,
    /// Row-major arena: `num_keys × payload_f32s`, sorted by key.
    rows: Vec<f32>,
    /// Row → key (ascending; rows are key-sorted for determinism).
    keys: Vec<u64>,
    /// Key → row.
    index: HashMap<u64, u32>,
    /// Virtual cost of building this snapshot (image scan + decode +
    /// ANN construction) — paid once per flip, not per read.
    build_cost: Cost,
    ann: Option<LshIndex>,
}

impl Snapshot {
    /// Decode `image` at its committed checkpoint into an immutable
    /// snapshot. `dim` is the embedding dimension served (the weight
    /// prefix of each payload); `ann` requests a per-snapshot retrieval
    /// index. Returns `None` if the image holds no initialized pool.
    pub fn build(image: CrashImage, dim: usize, ann: Option<&AnnConfig>) -> Option<Self> {
        let mut cost = Cost::new();
        let media = Arc::new(Media::from_crash(image));
        let (pool, report) = recover(media, &mut cost)?;
        let payload_f32s = pool.payload_f32s();
        assert!(
            payload_f32s >= dim,
            "image payload ({payload_f32s} f32s) smaller than requested dim ({dim})"
        );
        let mut live = report.live;
        live.sort_unstable_by_key(|r| r.key);
        let mut rows = vec![0f32; live.len() * payload_f32s];
        let mut keys = Vec::with_capacity(live.len());
        let mut index = HashMap::with_capacity(live.len());
        for (row, rec) in live.iter().enumerate() {
            let out = &mut rows[row * payload_f32s..(row + 1) * payload_f32s];
            pool.read_slot(rec.id, out, &mut cost)
                .expect("recovered slot valid");
            keys.push(rec.key);
            index.insert(rec.key, row as u32);
        }
        let ann = ann.map(|cfg| {
            let (idx, ann_cost) = LshIndex::build(&rows, &keys, dim, payload_f32s, cfg);
            cost.merge(&ann_cost);
            idx
        });
        Some(Self {
            checkpoint: report.checkpoint_id,
            dim,
            payload_f32s,
            rows,
            keys,
            index,
            build_cost: cost,
            ann,
        })
    }

    /// Batch id the snapshot's weights correspond to.
    pub fn checkpoint(&self) -> BatchId {
        self.checkpoint
    }

    /// Embedding dimension served (weight prefix of each payload).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Full payload width (weights + optimizer state).
    pub fn payload_f32s(&self) -> usize {
        self.payload_f32s
    }

    /// Distinct keys available.
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// True when the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// All keys, ascending.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The per-snapshot ANN index, if one was built at flip time.
    pub fn ann_index(&self) -> Option<&LshIndex> {
        self.ann.as_ref()
    }

    /// Virtual cost of building the snapshot (scan + decode + ANN).
    pub fn build_cost(&self) -> &Cost {
        &self.build_cost
    }

    /// The virtual cost of one DRAM arena read of `f32s` values.
    fn read_cost(&self, f32s: usize) -> Cost {
        let mut cost = Cost::new();
        cost.charge(CostKind::Cpu, HASH_PROBE_NS);
        DeviceTiming::dram().charge_read(f32s as u64 * 4, &mut cost);
        cost
    }

    /// Look up the embedding (weight prefix) of `key`: a borrow into
    /// the row arena plus the read's virtual cost. `None` (probe cost
    /// only) for unknown keys — the caller picks its missing-feature
    /// convention.
    pub fn lookup(&self, key: u64) -> (Option<&[f32]>, Cost) {
        match self.index.get(&key) {
            Some(&row) => (Some(self.row(row)), self.read_cost(self.dim)),
            None => (None, self.read_cost(0)),
        }
    }

    /// Full payload of `key` (weights + optimizer state), borrowed.
    /// Replaces the old `read_payload` which allocated a fresh
    /// `Vec<f32>` per call.
    pub fn payload(&self, key: u64) -> (Option<&[f32]>, Cost) {
        match self.index.get(&key) {
            Some(&row) => {
                let start = row as usize * self.payload_f32s;
                (
                    Some(&self.rows[start..start + self.payload_f32s]),
                    self.read_cost(self.payload_f32s),
                )
            }
            None => (None, self.read_cost(0)),
        }
    }

    /// Embedding (weight prefix) of row `row` (`< num_keys`), borrowed.
    pub fn row(&self, row: u32) -> &[f32] {
        let start = row as usize * self.payload_f32s;
        &self.rows[start..start + self.dim]
    }

    /// Key stored at `row`.
    pub fn key_of_row(&self, row: u32) -> u64 {
        self.keys[row as usize]
    }

    /// Row index of `key`, if present.
    pub fn row_of(&self, key: u64) -> Option<u32> {
        self.index.get(&key).copied()
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("checkpoint", &self.checkpoint)
            .field("keys", &self.keys.len())
            .field("dim", &self.dim)
            .field("ann", &self.ann.is_some())
            .finish()
    }
}

/// Epoch-flipped publication point for [`Snapshot`]s: training commits
/// a checkpoint, the next snapshot is built off-path, and `flip` swaps
/// it in for every reader atomically. Readers go through
/// [`SnapshotReader`]; the steady-state read path costs one atomic
/// load.
pub struct SnapshotHandle {
    epoch: AtomicU64,
    current: Mutex<Arc<Snapshot>>,
    registry: Arc<Registry>,
    phases: PhaseTimes,
    flips: Counter,
    hits: Counter,
    unknown: Counter,
}

impl SnapshotHandle {
    /// Publish `initial` at epoch 1 with a fresh telemetry registry.
    pub fn new(initial: Arc<Snapshot>) -> Self {
        Self::with_registry(initial, Arc::new(Registry::new()))
    }

    /// Publish `initial` at epoch 1, recording into `registry`
    /// (`serve_lookup`/`serve_topk`/`snapshot_flip`/`ann_build`
    /// latency histograms plus hit/unknown/flip counters).
    pub fn with_registry(initial: Arc<Snapshot>, registry: Arc<Registry>) -> Self {
        let phases = PhaseTimes::new(
            &registry,
            "",
            &[
                Phase::ServeLookup,
                Phase::ServeTopk,
                Phase::SnapshotFlip,
                Phase::AnnBuild,
            ],
        );
        let flips = registry.counter("serve_snapshot_flips_total");
        let hits = registry.counter("serve_hits_total");
        let unknown = registry.counter("serve_unknown_keys_total");
        Self {
            epoch: AtomicU64::new(1),
            current: Mutex::new(initial),
            registry,
            phases,
            flips,
            hits,
            unknown,
        }
    }

    /// The handle's telemetry registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Current publication epoch (bumped by every flip; starts at 1).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically publish `next` to all readers. Readers currently
    /// inside a request keep serving their old snapshot (it stays alive
    /// through their cached `Arc`) and pick up `next` on their next
    /// request — nobody ever sees a mix. Returns the new epoch.
    pub fn flip(&self, next: Arc<Snapshot>) -> u64 {
        let _span = self.phases.span(Phase::SnapshotFlip);
        let mut cur = self.current.lock();
        *cur = next;
        // Publish the epoch while still holding the writer lock: a
        // reader that observes the new epoch will find the new Arc.
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(cur);
        self.flips.inc();
        epoch
    }

    /// Build a snapshot from `image` and flip it in (records the ANN
    /// build under `ann_build_latency_ns`). `None` if the image holds
    /// no initialized pool — the previous snapshot keeps serving.
    pub fn publish_image(
        &self,
        image: CrashImage,
        dim: usize,
        ann: Option<&AnnConfig>,
    ) -> Option<(u64, Arc<Snapshot>)> {
        let built = {
            let _span = self.phases.span(Phase::AnnBuild);
            Arc::new(Snapshot::build(image, dim, ann)?)
        };
        let epoch = self.flip(Arc::clone(&built));
        Some((epoch, built))
    }

    /// Clone the currently published snapshot (locks briefly; readers
    /// on the hot path use [`SnapshotReader`] instead).
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.lock())
    }

    /// A reader with its own cached snapshot — one per serving thread.
    pub fn reader(&self) -> SnapshotReader<'_> {
        SnapshotReader {
            handle: self,
            seen_epoch: self.epoch(),
            cached: self.load(),
        }
    }
}

impl std::fmt::Debug for SnapshotHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// A per-thread view into a [`SnapshotHandle`]. The fast path —
/// [`SnapshotReader::acquire`] — is one `Acquire` epoch load; the
/// handle mutex is taken only when a flip happened since the last
/// request. Read methods record wall-clock serve latency and
/// hit/unknown counters into the handle's registry and return the
/// virtual read cost alongside the value.
pub struct SnapshotReader<'h> {
    handle: &'h SnapshotHandle,
    seen_epoch: u64,
    cached: Arc<Snapshot>,
}

impl SnapshotReader<'_> {
    /// The consistent snapshot for this request: refreshes the cached
    /// `Arc` iff the epoch moved, then borrows it. Every read taken
    /// from the returned `&Snapshot` belongs to one checkpoint.
    pub fn acquire(&mut self) -> &Snapshot {
        let epoch = self.handle.epoch.load(Ordering::Acquire);
        if epoch != self.seen_epoch {
            self.cached = self.handle.load();
            self.seen_epoch = epoch;
        }
        &self.cached
    }

    /// Epoch of the snapshot this reader last served from.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch
    }

    /// Look up one embedding: refresh, borrow, record telemetry.
    pub fn lookup(&mut self, key: u64) -> (Option<&[f32]>, Cost) {
        let handle = self.handle;
        let _span = handle.phases.span(Phase::ServeLookup);
        let snap = self.acquire();
        let (value, cost) = snap.lookup(key);
        match value {
            Some(_) => handle.hits.inc(),
            None => handle.unknown.inc(),
        }
        (value, cost)
    }

    /// Retrieve the top-`k` nearest rows for `query` with `retriever`,
    /// recording under `serve_topk_latency_ns`.
    pub fn retrieve(
        &mut self,
        query: &[f32],
        k: usize,
        retriever: &dyn crate::ann::Retriever,
    ) -> (Vec<crate::ann::TopK>, Cost) {
        let handle = self.handle;
        let _span = handle.phases.span(Phase::ServeTopk);
        let snap = self.acquire();
        retriever.top_k(snap, query, k)
    }
}

/// Wires the training side's checkpoint flow to the serving flip: call
/// [`CheckpointPublisher::maybe_publish`] at every batch boundary
/// (right where [`oe_core::CheckpointScheduler::due`] drives
/// `request_checkpoint`). When the node's committed checkpoint
/// advances, the persistence domain is captured, optionally archived
/// as an image file, built into a snapshot, and flipped into the
/// handle — mid-traffic, without pausing readers.
pub struct CheckpointPublisher {
    handle: Arc<SnapshotHandle>,
    dim: usize,
    ann: Option<AnnConfig>,
    /// Archive directory for [`save_image`] artifacts (`ckpt_<id>.img`).
    image_dir: Option<PathBuf>,
    last_published: BatchId,
}

impl CheckpointPublisher {
    /// Publish committed checkpoints of a `dim`-dimensional model into
    /// `handle`, building an ANN index per flip when `ann` is set.
    pub fn new(handle: Arc<SnapshotHandle>, dim: usize, ann: Option<AnnConfig>) -> Self {
        let last_published = handle.load().checkpoint();
        Self {
            handle,
            dim,
            ann,
            image_dir: None,
            last_published,
        }
    }

    /// Also archive every published checkpoint as `<dir>/ckpt_<id>.img`.
    pub fn with_image_dir(mut self, dir: PathBuf) -> Self {
        self.image_dir = Some(dir);
        self
    }

    /// Checkpoint id most recently flipped into the handle.
    pub fn last_published(&self) -> BatchId {
        self.last_published
    }

    /// Publish the node's committed checkpoint if it advanced since the
    /// last flip. Returns the new epoch when a flip happened.
    pub fn maybe_publish(&mut self, node: &PsNode) -> Option<u64> {
        let ckpt = node.committed_checkpoint();
        if ckpt <= self.last_published {
            return None;
        }
        let image = node.pool().media().crash(ckpt);
        if let Some(dir) = &self.image_dir {
            let path = dir.join(format!("ckpt_{ckpt}.img"));
            if let Err(e) = save_image(&image, &path) {
                eprintln!(
                    "checkpoint publisher: archiving {} failed: {e}",
                    path.display()
                );
            }
        }
        let (epoch, _snap) = self
            .handle
            .publish_image(image, self.dim, self.ann.as_ref())?;
        self.last_published = ckpt;
        Some(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind, PsEngine};

    const DIM: usize = 4;

    fn image_at(gen: u64) -> CrashImage {
        // A tiny pool written directly: every key's payload encodes the
        // generation so snapshots are distinguishable.
        let media = Arc::new(Media::new(oe_simdevice::MediaConfig::pmem(1 << 20)));
        let mut cost = Cost::new();
        let pool = oe_pmem::PmemPool::create_on(Arc::clone(&media), DIM * 4, &mut cost);
        for key in 0..20u64 {
            let id = pool.alloc(&mut cost);
            let payload: Vec<f32> = (0..DIM)
                .map(|d| (gen * 1_000 + key * 10 + d as u64) as f32)
                .collect();
            pool.write_slot(id, key, gen, &payload, &mut cost);
        }
        pool.set_checkpoint_id(gen, &mut cost);
        media.crash(gen)
    }

    #[test]
    fn snapshot_reads_are_borrows_with_cost() {
        let snap = Snapshot::build(image_at(3), DIM, None).expect("build");
        assert_eq!(snap.checkpoint(), 3);
        assert_eq!(snap.num_keys(), 20);
        assert_eq!(snap.dim(), DIM);
        let (row, cost) = snap.lookup(7);
        assert_eq!(row.unwrap(), &[3_070.0, 3_071.0, 3_072.0, 3_073.0]);
        assert!(cost.total_ns() > 0, "reads charge virtual cost");
        let (missing, _) = snap.lookup(999);
        assert!(missing.is_none());
        // Payload borrows the full width.
        let (payload, _) = snap.payload(7);
        assert_eq!(payload.unwrap().len(), snap.payload_f32s());
        // Keys are sorted, rows line up.
        assert!(snap.keys().windows(2).all(|w| w[0] < w[1]));
        let row_id = snap.row_of(7).unwrap();
        assert_eq!(snap.key_of_row(row_id), 7);
        assert_eq!(snap.row(row_id), snap.lookup(7).0.unwrap());
    }

    #[test]
    fn flip_is_atomic_and_bumps_epoch() {
        let handle =
            SnapshotHandle::new(Arc::new(Snapshot::build(image_at(1), DIM, None).unwrap()));
        assert_eq!(handle.epoch(), 1);
        let mut reader = handle.reader();
        let (v, _) = reader.lookup(5);
        assert_eq!(v.unwrap()[0], 1_050.0);
        let epoch = handle.flip(Arc::new(Snapshot::build(image_at(2), DIM, None).unwrap()));
        assert_eq!(epoch, 2);
        let (v, _) = reader.lookup(5);
        assert_eq!(v.unwrap()[0], 2_050.0, "reader picked up the flip");
        assert_eq!(reader.seen_epoch(), 2);
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter("serve_snapshot_flips_total"), Some(1));
        assert_eq!(snap.counter("serve_hits_total"), Some(2));
        assert_eq!(
            snap.histogram("snapshot_flip_latency_ns").unwrap().count(),
            1
        );
    }

    #[test]
    fn reader_holds_a_consistent_snapshot_across_a_flip() {
        let handle =
            SnapshotHandle::new(Arc::new(Snapshot::build(image_at(1), DIM, None).unwrap()));
        let mut reader = handle.reader();
        let snap = reader.acquire();
        let before = snap.lookup(3).0.unwrap().to_vec();
        // Flip mid-request: the acquired borrow still serves gen 1.
        handle.flip(Arc::new(Snapshot::build(image_at(2), DIM, None).unwrap()));
        let after = snap.lookup(3).0.unwrap();
        assert_eq!(before, after, "acquired snapshot is immutable");
        // The next request sees gen 2.
        let snap = reader.acquire();
        assert_eq!(snap.checkpoint(), 2);
    }

    #[test]
    fn publisher_flips_on_committed_checkpoints_only() {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
        let node = PsNode::new(cfg);
        let keys: Vec<u64> = (0..10).collect();
        let mut cost = Cost::new();
        let mut out = Vec::new();
        node.pull(&keys, 1, &mut out, &mut cost);
        node.end_pull_phase(1);
        node.push(&keys, &vec![0.1; keys.len() * DIM], 1, &mut cost);
        node.request_checkpoint(1);
        out.clear();
        node.pull(&keys, 2, &mut out, &mut cost);
        node.end_pull_phase(2);

        let initial = Arc::new(Snapshot::build(image_at(0), DIM, None).unwrap());
        let handle = Arc::new(SnapshotHandle::new(initial));
        let dir = std::env::temp_dir().join(format!("oe_pub_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut publisher =
            CheckpointPublisher::new(Arc::clone(&handle), DIM, None).with_image_dir(dir.clone());

        let epoch = publisher.maybe_publish(&node).expect("checkpoint 1 flips");
        assert_eq!(epoch, 2);
        assert_eq!(publisher.last_published(), 1);
        assert_eq!(handle.load().checkpoint(), 1);
        // Same committed checkpoint again: no flip.
        assert_eq!(publisher.maybe_publish(&node), None);
        assert_eq!(handle.epoch(), 2);
        // The archive artifact exists and reloads.
        let img = crate::snapshot::load_image(&dir.join("ckpt_1.img")).expect("archived image");
        let snap = Snapshot::build(img, DIM, None).unwrap();
        assert_eq!(snap.checkpoint(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
