//! ANN recall floor on a skewed workload.
//!
//! Pins the paper-default LSH shape against the exact reference arm on
//! a zipf-skewed query stream (the keys a serving tier actually sees,
//! drawn through `oe-workload`'s storm generator): mean recall@10 must
//! hold ≥ 0.9 while the ANN arm's virtual retrieval cost beats the
//! exact scan. Everything is seeded — the numbers are reproducible, so
//! the floor is a hard gate, not a flaky threshold.

use oe_serve::{recall_at_k, AnnConfig, ExactScan, LshRetriever, Retriever, Snapshot};
use oe_simdevice::{Cost, Media, MediaConfig};
use oe_workload::{SkewModel, StormGen, StormSpec};
use std::sync::Arc;

const DIM: usize = 16;
const NUM_KEYS: u64 = 4_000;
const QUERIES: u64 = 200;
const K: usize = 10;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic unit-norm embedding for `key`.
fn embedding(key: u64) -> Vec<f32> {
    let mut v: Vec<f32> = (0..DIM as u64)
        .map(|d| {
            let bits = splitmix64(key.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(d));
            (bits >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
        })
        .collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

fn build_snapshot(ann: Option<&AnnConfig>) -> Snapshot {
    let media = Arc::new(Media::new(MediaConfig::pmem(16 << 20)));
    let mut cost = Cost::new();
    let pool = oe_pmem::PmemPool::create_on(Arc::clone(&media), DIM * 4, &mut cost);
    for key in 0..NUM_KEYS {
        let id = pool.alloc(&mut cost);
        pool.write_slot(id, key, 1, &embedding(key), &mut cost);
    }
    pool.set_checkpoint_id(1, &mut cost);
    Snapshot::build(media.crash(11), DIM, ann).expect("snapshot")
}

/// The zipf-skewed serving stream: the queries are the embeddings of
/// the keys real traffic asks about, head-heavy like production.
fn query_keys() -> Vec<u64> {
    let gen = StormGen::new(StormSpec {
        num_keys: NUM_KEYS,
        keys_per_batch: 256,
        hot_keys: (0..32).collect(),
        hot_share: 0.3,
        storm_start: 0,
        storm_end: u64::MAX,
        base: SkewModel::paper_fit(),
        seed: 0xA11_5EED,
    });
    (0..QUERIES).map(|r| gen.request_key(r)).collect()
}

#[test]
fn lsh_recall_at_10_holds_the_floor_on_a_skewed_stream() {
    let cfg = AnnConfig::paper_default();
    let snap = build_snapshot(Some(&cfg));
    assert!(snap.ann_index().is_some(), "index built with the snapshot");

    let mut recall_sum = 0.0f64;
    let mut exact_ns = 0u64;
    let mut ann_ns = 0u64;
    let mut worst = 1.0f64;
    let keys = query_keys();
    for &key in &keys {
        let query = snap.lookup(key).0.expect("served key").to_vec();
        let (exact, ce) = ExactScan.top_k(&snap, &query, K);
        let (approx, ca) = LshRetriever.top_k(&snap, &query, K);
        let r = recall_at_k(&exact, &approx);
        recall_sum += r;
        worst = worst.min(r);
        exact_ns += ce.total_ns();
        ann_ns += ca.total_ns();
    }
    let mean = recall_sum / keys.len() as f64;
    assert!(
        mean >= 0.9,
        "mean recall@{K} = {mean:.3} (floor 0.9, worst query {worst:.2})"
    );
    assert!(
        ann_ns < exact_ns,
        "ANN must be cheaper than exact: {ann_ns} vs {exact_ns} virtual ns"
    );
    // The win should be substantive, not epsilon: candidates are a
    // sub-linear fraction of the corpus.
    assert!(
        (ann_ns as f64) < 0.8 * exact_ns as f64,
        "ANN saves ≥20%: {ann_ns} vs {exact_ns}"
    );
}

#[test]
fn recall_is_deterministic_across_rebuilds() {
    let cfg = AnnConfig::paper_default();
    let a = build_snapshot(Some(&cfg));
    let b = build_snapshot(Some(&cfg));
    for key in [0u64, 17, 999, 3_333] {
        let qa = a.lookup(key).0.unwrap().to_vec();
        let qb = b.lookup(key).0.unwrap().to_vec();
        assert_eq!(qa, qb);
        let (ra, _) = LshRetriever.top_k(&a, &qa, K);
        let (rb, _) = LshRetriever.top_k(&b, &qb, K);
        assert_eq!(ra, rb, "index is a pure function of (rows, config)");
    }
}
