//! Concurrent-flip torture test: readers must never observe a torn mix
//! of two checkpoints.
//!
//! The writer flips through 100 checkpoint generations mid-traffic
//! while reader threads hammer the handle through [`SnapshotReader`].
//! Every payload value encodes its generation (`gen·1000 + key·10 + d`)
//! so a reader can verify, for every row it gets back, that all `DIM`
//! values decode to the *same* committed generation — a mix of two
//! checkpoints inside one row, or a row from a never-committed
//! generation, fails loudly.

use oe_serve::{Snapshot, SnapshotHandle};
use oe_simdevice::{Cost, CrashImage, Media, MediaConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 4;
const KEYS: u64 = 32;
const GENERATIONS: u64 = 100;
const READERS: usize = 4;

/// A checkpoint image whose every payload value encodes `gen`.
fn image_at(gen: u64) -> CrashImage {
    let media = Arc::new(Media::new(MediaConfig::pmem(1 << 20)));
    let mut cost = Cost::new();
    let pool = oe_pmem::PmemPool::create_on(Arc::clone(&media), DIM * 4, &mut cost);
    for key in 0..KEYS {
        let id = pool.alloc(&mut cost);
        let payload: Vec<f32> = (0..DIM as u64)
            .map(|d| (gen * 1_000 + key * 10 + d) as f32)
            .collect();
        pool.write_slot(id, key, gen.max(1), &payload, &mut cost);
    }
    pool.set_checkpoint_id(gen.max(1), &mut cost);
    media.crash(gen)
}

/// Decode the generation a row claims to belong to, verifying internal
/// consistency: every value must agree on one `gen`. Returns `None`
/// (torn) otherwise.
fn decode_generation(key: u64, row: &[f32]) -> Option<u64> {
    let gen = (row[0] as u64).checked_sub(key * 10)? / 1_000;
    for (d, &v) in row.iter().enumerate() {
        if v != (gen * 1_000 + key * 10 + d as u64) as f32 {
            return None;
        }
    }
    Some(gen)
}

#[test]
fn readers_never_see_a_torn_mix_across_100_flips() {
    let initial = Arc::new(Snapshot::build(image_at(1), DIM, None).expect("gen 1"));
    let handle = SnapshotHandle::new(initial);
    let stop = AtomicBool::new(false);
    let torn = AtomicU64::new(0);
    let bad_gen = AtomicU64::new(0);
    let epochs_seen = AtomicU64::new(0); // bitset-ish: max distinct epochs per reader
    let reads = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..READERS {
            let handle = &handle;
            let stop = &stop;
            let torn = &torn;
            let bad_gen = &bad_gen;
            let epochs_seen = &epochs_seen;
            let reads = &reads;
            s.spawn(move || {
                let mut reader = handle.reader();
                let mut distinct_epochs = 0u64;
                let mut last_epoch = 0u64;
                let mut req = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = req % KEYS;
                    // One consistent snapshot for this "request": read
                    // several rows from it and pin them to ONE gen.
                    let snap = reader.acquire();
                    let gen0 = match decode_generation(key, snap.lookup(key).0.unwrap()) {
                        Some(g) => g,
                        None => {
                            torn.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    };
                    if !(1..=GENERATIONS).contains(&gen0) {
                        bad_gen.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    for other in [(key + 7) % KEYS, (key + 19) % KEYS] {
                        match decode_generation(other, snap.lookup(other).0.unwrap()) {
                            // The same acquired snapshot must serve the
                            // same generation for every row — a flip in
                            // flight must not leak in.
                            Some(g) if g == gen0 => {}
                            _ => {
                                torn.fetch_add(1, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    if reader.seen_epoch() != last_epoch {
                        last_epoch = reader.seen_epoch();
                        distinct_epochs += 1;
                    }
                    reads.fetch_add(3, Ordering::Relaxed);
                    req += READERS as u64;
                }
                epochs_seen.fetch_max(distinct_epochs, Ordering::Relaxed);
            });
        }

        // Let readers serve some epoch-1 traffic first, so at least one
        // of them is guaranteed to straddle a flip.
        while reads.load(Ordering::Relaxed) < 64 {
            std::thread::yield_now();
        }
        // Writer: flip through the remaining generations mid-traffic.
        for gen in 2..=GENERATIONS {
            let next = Arc::new(Snapshot::build(image_at(gen), DIM, None).expect("gen image"));
            handle.flip(next);
            if gen % 10 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(torn.load(Ordering::Relaxed), 0, "torn row observed");
    assert_eq!(
        bad_gen.load(Ordering::Relaxed),
        0,
        "row from an uncommitted generation observed"
    );
    // 100 generations → initial epoch 1 + 99 flips.
    assert_eq!(handle.epoch(), GENERATIONS, "every flip bumped the epoch");
    assert_eq!(handle.load().checkpoint(), GENERATIONS);
    assert!(
        epochs_seen.load(Ordering::Relaxed) > 1,
        "at least one reader must observe a mid-traffic flip"
    );
    assert!(reads.load(Ordering::Relaxed) > 0);
    let metrics = handle.registry().snapshot();
    assert_eq!(
        metrics.counter("serve_snapshot_flips_total"),
        Some(GENERATIONS - 1)
    );
}

#[test]
fn a_reader_parked_on_an_old_snapshot_keeps_it_alive() {
    let handle = SnapshotHandle::new(Arc::new(Snapshot::build(image_at(1), DIM, None).unwrap()));
    let mut reader = handle.reader();
    {
        let snap = reader.acquire();
        let row_before = snap.lookup(4).0.unwrap();
        // Two flips while the borrow is live: the old arena must survive.
        handle.flip(Arc::new(Snapshot::build(image_at(2), DIM, None).unwrap()));
        handle.flip(Arc::new(Snapshot::build(image_at(3), DIM, None).unwrap()));
        assert_eq!(decode_generation(4, row_before), Some(1));
    }
    // Next request catches up to the latest.
    let snap = reader.acquire();
    assert_eq!(decode_generation(4, snap.lookup(4).0.unwrap()), Some(3));
    assert_eq!(handle.epoch(), 3);
}
