//! Virtual time primitives.
//!
//! The whole reproduction runs on *virtual* (simulated) time: device models
//! charge nanoseconds to [`crate::Cost`] sinks and the training driver
//! advances a [`VirtualClock`]. Nothing ever sleeps, so a simulated
//! multi-hour training epoch regenerates in milliseconds of wall time, and
//! results are bit-for-bit deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Simulated nanoseconds.
pub type Nanos = u64;

/// Nanoseconds per second, for conversions.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A monotonically advancing virtual clock shared between simulator
/// components (checkpoint scheduler, trace recorder, trainer).
///
/// The clock is advanced only by the discrete-event driver; components read
/// it to timestamp events or to decide whether a periodic action (e.g. a
/// checkpoint every 20 simulated minutes) is due.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Current virtual time in seconds (lossy, for reporting).
    pub fn now_secs(&self) -> f64 {
        self.now() as f64 / NANOS_PER_SEC as f64
    }

    /// Advance the clock by `delta` nanoseconds, returning the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now_ns.fetch_add(delta, Ordering::AcqRel) + delta
    }

    /// Move the clock forward to `t` if `t` is later than the current time.
    /// Returns the resulting time. Used when merging parallel timelines:
    /// the driver sets the clock to the max of all workers' finish times.
    pub fn advance_to(&self, t: Nanos) -> Nanos {
        let mut cur = self.now_ns.load(Ordering::Acquire);
        while t > cur {
            match self
                .now_ns
                .compare_exchange(cur, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(observed) => cur = observed,
            }
        }
        cur
    }

    /// Reset to zero (between independent experiment runs).
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Release);
    }
}

/// Convert seconds (possibly fractional) to [`Nanos`].
pub fn secs(s: f64) -> Nanos {
    (s * NANOS_PER_SEC as f64) as Nanos
}

/// Convert minutes to [`Nanos`].
pub fn minutes(m: f64) -> Nanos {
    secs(m * 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::new();
        c.advance(100);
        // Going backwards is a no-op.
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.advance_to(250), 250);
        assert_eq!(c.now(), 250);
    }

    #[test]
    fn conversions() {
        assert_eq!(secs(1.5), 1_500_000_000);
        assert_eq!(minutes(2.0), 120 * NANOS_PER_SEC);
        let c = VirtualClock::new();
        c.advance(secs(2.0));
        assert!((c.now_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let c = VirtualClock::new();
        c.advance(42);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn advance_to_concurrent() {
        use std::sync::Arc;
        let c = Arc::new(VirtualClock::new());
        let hs: Vec<_> = (0..8u64)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for j in 0..1000 {
                        c.advance_to(i * 1000 + j);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 7999);
    }
}
