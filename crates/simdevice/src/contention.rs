//! Composition of per-operation costs into burst completion times.
//!
//! Synchronous DLRM training hits the parameter server with two bursts per
//! batch (paper Fig. 2): every worker issues its pulls at batch start and
//! its updates at batch end, simultaneously. The PS serves a burst with a
//! pool of service threads. How long the burst takes depends on *what kind*
//! of work it contains:
//!
//! - CPU-bound work (hash lookups, memcpy issue) divides across threads,
//! - device byte transfers are bound by the device's effective bandwidth
//!   under that concurrency (see [`crate::DeviceTiming::concurrency_efficiency`]),
//! - critical sections under a global lock execute serially no matter what.
//!
//! [`ContentionModel::burst_ns`] composes a [`Cost`] into a completion time
//! using these rules — an Amdahl-style bound combined with bandwidth floors.

use crate::clock::Nanos;
use crate::cost::{Cost, CostKind};
use crate::device::DeviceTiming;
use serde::Serialize;

/// Amdahl composition: `serial` nanoseconds cannot parallelize, `parallel`
/// nanoseconds divide evenly across `threads`.
#[inline]
pub fn amdahl_burst(serial_ns: Nanos, parallel_ns: Nanos, threads: u32) -> Nanos {
    serial_ns + parallel_ns / threads.max(1) as u64
}

/// Time to move `bytes` through a device at `bw` bytes/ns shared by
/// `streams` concurrent requesters, given the device's efficiency curve.
#[inline]
pub fn shared_bandwidth_ns(bytes: u64, bw_bytes_per_ns: f64, efficiency: f64) -> Nanos {
    (bytes as f64 / (bw_bytes_per_ns * efficiency.max(1e-6))) as Nanos
}

/// Parameters describing how a parameter-server node turns a burst of
/// charged costs into wall(-virtual)-clock time.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ContentionModel {
    /// Number of service threads handling requests on the PS node.
    pub service_threads: u32,
    /// Number of concurrent requesters (≈ workers × connections) during a
    /// burst; drives device-efficiency degradation.
    pub burst_streams: u32,
    /// PMem timing for bandwidth floors.
    pub pmem: DeviceTiming,
    /// DRAM timing for bandwidth floors.
    pub dram: DeviceTiming,
    /// SSD timing for bandwidth floors.
    pub ssd: DeviceTiming,
    /// Fabric-link timing for disaggregated-pool bandwidth floors.
    pub fabric: DeviceTiming,
}

impl ContentionModel {
    /// A model for a PS node with `service_threads` threads serving a burst
    /// from `burst_streams` concurrent client streams.
    pub fn new(service_threads: u32, burst_streams: u32) -> Self {
        Self {
            service_threads,
            burst_streams,
            pmem: DeviceTiming::pmem(),
            dram: DeviceTiming::dram(),
            ssd: DeviceTiming::flash_ssd(),
            fabric: DeviceTiming::cxl_fabric(),
        }
    }

    /// Completion time of a burst whose constituent operations charged
    /// `cost`.
    ///
    /// Rule per category:
    /// - `Serialized`: runs start-to-finish serially.
    /// - `Cpu`, `Net`: divide across service threads (network charges
    ///   already include the shared-bandwidth share computed by the network
    ///   model, so here they just overlap across threads).
    /// - `DramTransfer`/`PmemRead`/`PmemWrite`/`SsdTransfer`: the charged
    ///   nanoseconds assumed exclusive access; the burst executes them at
    ///   min(thread-parallel speed, device effective bandwidth). We take
    ///   the max of (charged/threads) and (charged/efficiency_scaled) —
    ///   i.e. adding threads helps only until the device saturates.
    pub fn burst_ns(&self, cost: &Cost) -> Nanos {
        let t = self.service_threads.max(1) as u64;
        let s = self.burst_streams;

        // Global-lock critical sections get *slower* under concurrency:
        // every handoff bounces the lock cache line between cores and
        // parks/unparks waiters. Empirically near-linear in the number
        // of contending streams for short critical sections.
        let lock_contention = 1.0 + 0.02 * (s.saturating_sub(1)) as f64;
        let serial = (cost.ns(CostKind::Serialized) as f64 * lock_contention) as Nanos;
        let cpuish = (cost.ns(CostKind::Cpu) + cost.ns(CostKind::Net)) / t;

        let dev = |ns: Nanos, eff: f64| -> Nanos {
            // Thread-parallel execution, inflated by the device's
            // efficiency loss at this client concurrency: adding service
            // threads helps, but the device delivers only `eff` of its
            // peak under a burst of `s` streams.
            (ns as f64 / (t as f64 * eff.max(1e-6))) as Nanos
        };

        let dram = dev(
            cost.ns(CostKind::DramTransfer),
            self.dram.concurrency_efficiency(s),
        );
        let pmem_r = dev(
            cost.ns(CostKind::PmemRead),
            self.pmem.concurrency_efficiency(s),
        );
        let pmem_w = dev(
            cost.ns(CostKind::PmemWrite),
            self.pmem.concurrency_efficiency(s),
        );
        let ssd = dev(
            cost.ns(CostKind::SsdTransfer),
            self.ssd.concurrency_efficiency(s),
        );
        let fabric = dev(
            cost.ns(CostKind::FabricTransfer),
            self.fabric.concurrency_efficiency(s),
        );

        serial + cpuish + dram + pmem_r + pmem_w + ssd + fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_basics() {
        assert_eq!(amdahl_burst(100, 1000, 10), 200);
        assert_eq!(amdahl_burst(0, 1000, 1), 1000);
        // threads=0 treated as 1
        assert_eq!(amdahl_burst(5, 100, 0), 105);
    }

    #[test]
    fn serialized_work_never_parallelizes() {
        let mut c = Cost::new();
        c.charge(CostKind::Serialized, 1_000_000);
        // More service threads never help serialized work…
        let few = ContentionModel::new(1, 4).burst_ns(&c);
        let many = ContentionModel::new(64, 4).burst_ns(&c);
        assert_eq!(few, many);
        // …and more contending streams make it *worse*.
        let calm = ContentionModel::new(16, 1).burst_ns(&c);
        let storm = ContentionModel::new(16, 32).burst_ns(&c);
        assert!(storm > calm, "lock contention: {storm} vs {calm}");
        assert_eq!(calm, 1_000_000, "uncontended = raw serial time");
    }

    #[test]
    fn cpu_work_parallelizes() {
        let mut c = Cost::new();
        c.charge(CostKind::Cpu, 1_000_000);
        let one = ContentionModel::new(1, 1).burst_ns(&c);
        let eight = ContentionModel::new(8, 1).burst_ns(&c);
        assert_eq!(one / 8, eight);
    }

    #[test]
    fn pmem_saturates_but_dram_scales() {
        let mut pm = Cost::new();
        pm.charge(CostKind::PmemWrite, 1_000_000);
        let mut dr = Cost::new();
        dr.charge(CostKind::DramTransfer, 1_000_000);

        // Same thread count, heavy client concurrency: PMem time shrinks
        // far less than DRAM time when threads grow.
        let pm16 = ContentionModel::new(16, 16).burst_ns(&pm);
        let dr16 = ContentionModel::new(16, 16).burst_ns(&dr);
        assert!(
            pm16 > dr16 * 2,
            "PMem burst should be much slower under concurrency: pm={pm16} dr={dr16}"
        );
    }

    #[test]
    fn more_streams_hurt_pmem_bursts() {
        let mut c = Cost::new();
        c.charge(CostKind::PmemWrite, 10_000_000);
        let calm = ContentionModel::new(16, 4).burst_ns(&c);
        let storm = ContentionModel::new(16, 32).burst_ns(&c);
        assert!(storm > calm, "storm={storm} calm={calm}");
    }

    #[test]
    fn shared_bandwidth_helper() {
        // 1000 bytes at 1 byte/ns, 50% efficiency → 2000 ns.
        assert_eq!(shared_bandwidth_ns(1000, 1.0, 0.5), 2000);
    }
}
