//! Virtual-time cost accounting.
//!
//! Every storage-engine operation in the reproduction takes a `&mut Cost`
//! sink and charges simulated nanoseconds to a category. The discrete-event
//! trainer later composes categories with the contention model: e.g. PMem
//! byte-transfer time is bandwidth-bound (shared across PS service threads)
//! while hash/lock work is CPU-bound (Amdahl-parallelizable).

use crate::clock::Nanos;
use serde::Serialize;

/// Cost categories. The split matters because the contention model treats
/// them differently when composing a burst served by many threads:
/// bandwidth-bound categories do not speed up with more service threads,
/// CPU-bound ones do, and serialized ones (global-lock critical sections)
/// never parallelize at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[repr(usize)]
pub enum CostKind {
    /// DRAM byte transfer (bandwidth-bound, but DRAM bw is rarely the
    /// bottleneck at our scales).
    DramTransfer = 0,
    /// PMem read byte transfer + media read latency (bandwidth-bound).
    PmemRead = 1,
    /// PMem write byte transfer + flush latency (bandwidth-bound; the
    /// scarcest resource in the paper).
    PmemWrite = 2,
    /// SSD transfer (bandwidth-bound; used by checkpoint-to-SSD baselines).
    SsdTransfer = 3,
    /// Per-operation CPU work: hash lookups, LRU pointer surgery, memcpy
    /// issue overhead (parallelizes across service threads).
    Cpu = 4,
    /// Time spent inside critical sections protected by a *global* lock
    /// (never parallelizes; the Ori-Cache killer).
    Serialized = 5,
    /// Network transfer + RPC overhead.
    Net = 6,
}

impl CostKind {
    /// All categories, for iteration/reporting.
    pub const ALL: [CostKind; 7] = [
        CostKind::DramTransfer,
        CostKind::PmemRead,
        CostKind::PmemWrite,
        CostKind::SsdTransfer,
        CostKind::Cpu,
        CostKind::Serialized,
        CostKind::Net,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::DramTransfer => "dram",
            CostKind::PmemRead => "pmem_read",
            CostKind::PmemWrite => "pmem_write",
            CostKind::SsdTransfer => "ssd",
            CostKind::Cpu => "cpu",
            CostKind::Serialized => "serialized",
            CostKind::Net => "net",
        }
    }
}

const N_KINDS: usize = 7;

/// Accumulated virtual-time charges, by category, plus operation counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Cost {
    ns: [Nanos; N_KINDS],
    ops: [u64; N_KINDS],
}

impl Cost {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `ns` nanoseconds to `kind` (one operation).
    #[inline]
    pub fn charge(&mut self, kind: CostKind, ns: Nanos) {
        self.ns[kind as usize] += ns;
        self.ops[kind as usize] += 1;
    }

    /// Charge without bumping the op counter (for merged sub-charges).
    #[inline]
    pub fn charge_ns_only(&mut self, kind: CostKind, ns: Nanos) {
        self.ns[kind as usize] += ns;
    }

    /// Nanoseconds charged to `kind`.
    #[inline]
    pub fn ns(&self, kind: CostKind) -> Nanos {
        self.ns[kind as usize]
    }

    /// Operations counted against `kind`.
    #[inline]
    pub fn ops(&self, kind: CostKind) -> u64 {
        self.ops[kind as usize]
    }

    /// Sum over all categories — the *serial* execution time of everything
    /// charged here (an upper bound; the contention model refines it).
    pub fn total_ns(&self) -> Nanos {
        self.ns.iter().sum()
    }

    /// Merge another sink into this one.
    pub fn merge(&mut self, other: &Cost) {
        for i in 0..N_KINDS {
            self.ns[i] += other.ns[i];
            self.ops[i] += other.ops[i];
        }
    }

    /// Difference (self - other), saturating; used for per-phase deltas.
    pub fn delta_since(&self, baseline: &Cost) -> Cost {
        let mut d = Cost::new();
        for i in 0..N_KINDS {
            d.ns[i] = self.ns[i].saturating_sub(baseline.ns[i]);
            d.ops[i] = self.ops[i].saturating_sub(baseline.ops[i]);
        }
        d
    }

    /// Reset all charges.
    pub fn clear(&mut self) {
        *self = Cost::new();
    }

    /// Raw (ns, ops) arrays in [`CostKind::ALL`] order — for wire
    /// serialization by the RPC layer.
    pub fn raw_parts(&self) -> ([Nanos; 7], [u64; 7]) {
        (self.ns, self.ops)
    }

    /// Rebuild from raw parts (inverse of [`Self::raw_parts`]).
    pub fn from_raw_parts(ns: [Nanos; 7], ops: [u64; 7]) -> Self {
        Self { ns, ops }
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.ns.iter().all(|&n| n == 0) && self.ops.iter().all(|&n| n == 0)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for kind in CostKind::ALL {
            let ns = self.ns(kind);
            if ns > 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}us", kind.name(), ns / 1_000)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_read_back() {
        let mut c = Cost::new();
        c.charge(CostKind::PmemRead, 300);
        c.charge(CostKind::PmemRead, 200);
        c.charge(CostKind::Cpu, 50);
        assert_eq!(c.ns(CostKind::PmemRead), 500);
        assert_eq!(c.ops(CostKind::PmemRead), 2);
        assert_eq!(c.total_ns(), 550);
    }

    #[test]
    fn merge_and_delta() {
        let mut a = Cost::new();
        a.charge(CostKind::Net, 10);
        let snapshot = a.clone();
        a.charge(CostKind::Net, 30);
        a.charge(CostKind::Serialized, 7);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.ns(CostKind::Net), 30);
        assert_eq!(d.ns(CostKind::Serialized), 7);

        let mut b = Cost::new();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.ns(CostKind::Net), 80);
        assert_eq!(b.ops(CostKind::Serialized), 2);
    }

    #[test]
    fn display_and_empty() {
        let mut c = Cost::new();
        assert!(c.is_empty());
        assert_eq!(format!("{c}"), "(empty)");
        c.charge(CostKind::Cpu, 2_000);
        assert!(format!("{c}").contains("cpu=2us"));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn charge_ns_only_skips_counter() {
        let mut c = Cost::new();
        c.charge_ns_only(CostKind::DramTransfer, 64);
        assert_eq!(c.ns(CostKind::DramTransfer), 64);
        assert_eq!(c.ops(CostKind::DramTransfer), 0);
    }
}
