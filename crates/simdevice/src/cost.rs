//! Virtual-time cost accounting.
//!
//! Every storage-engine operation in the reproduction takes a `&mut Cost`
//! sink and charges simulated nanoseconds to a category. The discrete-event
//! trainer later composes categories with the contention model: e.g. PMem
//! byte-transfer time is bandwidth-bound (shared across PS service threads)
//! while hash/lock work is CPU-bound (Amdahl-parallelizable).

use crate::clock::Nanos;
use serde::Serialize;

/// Cost categories. The split matters because the contention model treats
/// them differently when composing a burst served by many threads:
/// bandwidth-bound categories do not speed up with more service threads,
/// CPU-bound ones do, and serialized ones (global-lock critical sections)
/// never parallelize at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[repr(usize)]
pub enum CostKind {
    /// DRAM byte transfer (bandwidth-bound, but DRAM bw is rarely the
    /// bottleneck at our scales).
    DramTransfer = 0,
    /// PMem read byte transfer + media read latency (bandwidth-bound).
    PmemRead = 1,
    /// PMem write byte transfer + flush latency (bandwidth-bound; the
    /// scarcest resource in the paper).
    PmemWrite = 2,
    /// SSD transfer (bandwidth-bound; used by checkpoint-to-SSD baselines).
    SsdTransfer = 3,
    /// Per-operation CPU work: hash lookups, LRU pointer surgery, memcpy
    /// issue overhead (parallelizes across service threads).
    Cpu = 4,
    /// Time spent inside critical sections protected by a *global* lock
    /// (never parallelizes; the Ori-Cache killer).
    Serialized = 5,
    /// Network transfer + RPC overhead.
    Net = 6,
    /// CXL-style fabric transfer to a disaggregated memory pool
    /// (bandwidth-bound; shared by every node attached to the pool).
    FabricTransfer = 7,
}

impl CostKind {
    /// All categories, for iteration/reporting.
    pub const ALL: [CostKind; 8] = [
        CostKind::DramTransfer,
        CostKind::PmemRead,
        CostKind::PmemWrite,
        CostKind::SsdTransfer,
        CostKind::Cpu,
        CostKind::Serialized,
        CostKind::Net,
        CostKind::FabricTransfer,
    ];

    /// True if work of this kind charged on *distinct parallel lanes*
    /// overlaps in time, so a lane merge takes the max over lanes:
    /// per-lane CPU work runs on separate cores, DRAM transfers are far
    /// from the bandwidth wall at our scales, and media *reads* have
    /// enough bandwidth headroom to overlap (RecNMP/TensorDIMM's case).
    /// Everything else contends for a single resource — PMem/SSD write
    /// bandwidth, the network, global-lock critical sections — and sums.
    pub fn lane_parallel(self) -> bool {
        matches!(
            self,
            CostKind::Cpu | CostKind::DramTransfer | CostKind::PmemRead
        )
    }

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::DramTransfer => "dram",
            CostKind::PmemRead => "pmem_read",
            CostKind::PmemWrite => "pmem_write",
            CostKind::SsdTransfer => "ssd",
            CostKind::Cpu => "cpu",
            CostKind::Serialized => "serialized",
            CostKind::Net => "net",
            CostKind::FabricTransfer => "fabric",
        }
    }
}

const N_KINDS: usize = 8;

/// Accumulated virtual-time charges, by category, plus operation counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Cost {
    ns: [Nanos; N_KINDS],
    ops: [u64; N_KINDS],
}

impl Cost {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `ns` nanoseconds to `kind` (one operation).
    #[inline]
    pub fn charge(&mut self, kind: CostKind, ns: Nanos) {
        self.ns[kind as usize] += ns;
        self.ops[kind as usize] += 1;
    }

    /// Charge without bumping the op counter (for merged sub-charges).
    #[inline]
    pub fn charge_ns_only(&mut self, kind: CostKind, ns: Nanos) {
        self.ns[kind as usize] += ns;
    }

    /// Nanoseconds charged to `kind`.
    #[inline]
    pub fn ns(&self, kind: CostKind) -> Nanos {
        self.ns[kind as usize]
    }

    /// Operations counted against `kind`.
    #[inline]
    pub fn ops(&self, kind: CostKind) -> u64 {
        self.ops[kind as usize]
    }

    /// Sum over all categories — the *serial* execution time of everything
    /// charged here (an upper bound; the contention model refines it).
    pub fn total_ns(&self) -> Nanos {
        self.ns.iter().sum()
    }

    /// Merge another sink into this one.
    pub fn merge(&mut self, other: &Cost) {
        for i in 0..N_KINDS {
            self.ns[i] += other.ns[i];
            self.ops[i] += other.ops[i];
        }
    }

    /// Merge one *parallel lane* into this accumulator: nanoseconds of
    /// [`CostKind::lane_parallel`] kinds take the max over lanes (the
    /// lanes run concurrently, so the slowest lane bounds the phase),
    /// while serialized/bandwidth-contended kinds sum. Operation
    /// counters always sum — they count events, not time.
    ///
    /// The accumulator must start empty and absorb only sibling lanes of
    /// one parallel phase; fold the result into the request's cost with
    /// [`Self::merge`] afterwards (which sums, as the phase as a whole is
    /// sequential with the rest of the request).
    pub fn merge_parallel(&mut self, lane: &Cost) {
        for kind in CostKind::ALL {
            let i = kind as usize;
            if kind.lane_parallel() {
                self.ns[i] = self.ns[i].max(lane.ns[i]);
            } else {
                self.ns[i] += lane.ns[i];
            }
            self.ops[i] += lane.ops[i];
        }
    }

    /// Difference (self - other), saturating; used for per-phase deltas.
    pub fn delta_since(&self, baseline: &Cost) -> Cost {
        let mut d = Cost::new();
        for i in 0..N_KINDS {
            d.ns[i] = self.ns[i].saturating_sub(baseline.ns[i]);
            d.ops[i] = self.ops[i].saturating_sub(baseline.ops[i]);
        }
        d
    }

    /// Reset all charges.
    pub fn clear(&mut self) {
        *self = Cost::new();
    }

    /// Raw (ns, ops) arrays in [`CostKind::ALL`] order — for wire
    /// serialization by the RPC layer.
    pub fn raw_parts(&self) -> ([Nanos; 8], [u64; 8]) {
        (self.ns, self.ops)
    }

    /// Rebuild from raw parts (inverse of [`Self::raw_parts`]).
    pub fn from_raw_parts(ns: [Nanos; 8], ops: [u64; 8]) -> Self {
        Self { ns, ops }
    }

    /// True if nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.ns.iter().all(|&n| n == 0) && self.ops.iter().all(|&n| n == 0)
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for kind in CostKind::ALL {
            let ns = self.ns(kind);
            if ns > 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}us", kind.name(), ns / 1_000)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_read_back() {
        let mut c = Cost::new();
        c.charge(CostKind::PmemRead, 300);
        c.charge(CostKind::PmemRead, 200);
        c.charge(CostKind::Cpu, 50);
        assert_eq!(c.ns(CostKind::PmemRead), 500);
        assert_eq!(c.ops(CostKind::PmemRead), 2);
        assert_eq!(c.total_ns(), 550);
    }

    #[test]
    fn merge_and_delta() {
        let mut a = Cost::new();
        a.charge(CostKind::Net, 10);
        let snapshot = a.clone();
        a.charge(CostKind::Net, 30);
        a.charge(CostKind::Serialized, 7);
        let d = a.delta_since(&snapshot);
        assert_eq!(d.ns(CostKind::Net), 30);
        assert_eq!(d.ns(CostKind::Serialized), 7);

        let mut b = Cost::new();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.ns(CostKind::Net), 80);
        assert_eq!(b.ops(CostKind::Serialized), 2);
    }

    #[test]
    fn display_and_empty() {
        let mut c = Cost::new();
        assert!(c.is_empty());
        assert_eq!(format!("{c}"), "(empty)");
        c.charge(CostKind::Cpu, 2_000);
        assert!(format!("{c}").contains("cpu=2us"));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn parallel_lane_merge_maxes_parallel_kinds_and_sums_serial() {
        let mut a = Cost::new();
        a.charge(CostKind::Cpu, 100);
        a.charge(CostKind::PmemRead, 40);
        a.charge(CostKind::Serialized, 10);
        a.charge(CostKind::PmemWrite, 5);
        let mut b = Cost::new();
        b.charge(CostKind::Cpu, 300);
        b.charge(CostKind::Serialized, 20);
        b.charge(CostKind::PmemWrite, 7);

        let mut acc = Cost::new();
        acc.merge_parallel(&a);
        acc.merge_parallel(&b);
        // Parallel kinds: max over lanes.
        assert_eq!(acc.ns(CostKind::Cpu), 300);
        assert_eq!(acc.ns(CostKind::PmemRead), 40);
        // Contended kinds: sum over lanes.
        assert_eq!(acc.ns(CostKind::Serialized), 30);
        assert_eq!(acc.ns(CostKind::PmemWrite), 12);
        // Event counters always sum.
        assert_eq!(acc.ops(CostKind::Cpu), 2);
        assert_eq!(acc.ops(CostKind::Serialized), 2);
    }

    #[test]
    fn parallel_lane_merge_is_order_independent() {
        let mut lanes = Vec::new();
        for i in 1..=4u64 {
            let mut c = Cost::new();
            c.charge(CostKind::Cpu, i * 100);
            c.charge(CostKind::Serialized, i);
            lanes.push(c);
        }
        let fold = |order: &[usize]| {
            let mut acc = Cost::new();
            for &i in order {
                acc.merge_parallel(&lanes[i]);
            }
            acc
        };
        assert_eq!(fold(&[0, 1, 2, 3]), fold(&[3, 1, 0, 2]));
        assert_eq!(fold(&[0, 1, 2, 3]).ns(CostKind::Cpu), 400);
        assert_eq!(fold(&[0, 1, 2, 3]).ns(CostKind::Serialized), 10);
    }

    #[test]
    fn charge_ns_only_skips_counter() {
        let mut c = Cost::new();
        c.charge_ns_only(CostKind::DramTransfer, 64);
        assert_eq!(c.ns(CostKind::DramTransfer), 64);
        assert_eq!(c.ops(CostKind::DramTransfer), 0);
    }
}
