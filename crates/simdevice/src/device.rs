//! Device timing models calibrated to Table I of the paper.
//!
//! | Device    | Bandwidth R/W (GB/s) | Latency R/W (ns) |
//! |-----------|----------------------|------------------|
//! | DRAM      | 115 / 79             | 81 / 86          |
//! | PMem      | 39 / 14              | 305 / 94         |
//! | Flash SSD | 2.5 / 1.5            | > 10000          |
//!
//! Beyond the headline numbers, the model captures the property that drives
//! the paper's Observation 1: Optane PMem's effective bandwidth collapses
//! under highly concurrent bursty access (its on-DIMM buffer, XPLine
//! write-combining and limited outstanding-request queue), whereas DRAM
//! scales almost linearly with memory channels. We model this as a
//! per-device *concurrency efficiency* curve.

use crate::clock::Nanos;
use crate::cost::{Cost, CostKind};
use serde::Serialize;

/// Identifies one of the three device classes from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum DeviceKind {
    /// DDR4 DRAM.
    Dram,
    /// Intel Optane DC Persistent Memory (AppDirect mode).
    Pmem,
    /// NVMe flash SSD (block device; byte access rounded up to 4 KiB).
    FlashSsd,
    /// CXL-style fabric link to a disaggregated memory pool
    /// (TrainingCXL direction): PMem media reached through a load/store
    /// fabric rather than the local memory bus.
    CxlFabric,
}

/// A calibrated timing model for one device.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DeviceTiming {
    /// Which device class this models.
    pub kind: DeviceKind,
    /// Idle read latency, ns (first byte).
    pub read_lat_ns: Nanos,
    /// Idle write latency, ns (to persistence domain for PMem).
    pub write_lat_ns: Nanos,
    /// Peak sequential read bandwidth, bytes/ns (= GB/s / 1e0; 1 byte/ns ≈ 1 GB/s).
    pub read_bw_bytes_per_ns: f64,
    /// Peak write bandwidth, bytes/ns.
    pub write_bw_bytes_per_ns: f64,
    /// Minimum transfer granularity in bytes (cache line for memory,
    /// 4 KiB page for SSD).
    pub access_granularity: u64,
    /// Concurrency efficiency exponent: effective aggregate bandwidth under
    /// `k` concurrent streams is `peak * k^(eff-1) … ` clamped — see
    /// [`DeviceTiming::concurrency_efficiency`]. 1.0 = perfect scaling,
    /// lower = faster collapse. DRAM ≈ 0.97, PMem ≈ 0.45, SSD ≈ 0.85.
    pub concurrency_exponent: f64,
}

impl DeviceTiming {
    /// Table I DRAM model.
    pub const fn dram() -> Self {
        Self {
            kind: DeviceKind::Dram,
            read_lat_ns: 81,
            write_lat_ns: 86,
            read_bw_bytes_per_ns: 115.0,
            write_bw_bytes_per_ns: 79.0,
            access_granularity: 64,
            concurrency_exponent: 0.97,
        }
    }

    /// Table I Optane PMem model.
    pub const fn pmem() -> Self {
        Self {
            kind: DeviceKind::Pmem,
            read_lat_ns: 305,
            write_lat_ns: 94,
            read_bw_bytes_per_ns: 39.0,
            write_bw_bytes_per_ns: 14.0,
            access_granularity: 64,
            concurrency_exponent: 0.45,
        }
    }

    /// Table I flash SSD model (midpoint of the paper's 2–3 / 1–2 GB/s).
    pub const fn flash_ssd() -> Self {
        Self {
            kind: DeviceKind::FlashSsd,
            read_lat_ns: 10_000,
            write_lat_ns: 20_000,
            read_bw_bytes_per_ns: 2.5,
            write_bw_bytes_per_ns: 1.5,
            access_granularity: 4096,
            concurrency_exponent: 0.85,
        }
    }

    /// CXL-style fabric link to a disaggregated pool: latency sits
    /// between local PMem and SSD (~one switch hop each way), bandwidth
    /// is a single x8 link shared by everything behind it, and the
    /// efficiency exponent models switch-port congestion — gentler than
    /// Optane's media collapse but far from DRAM's near-linear scaling.
    pub const fn cxl_fabric() -> Self {
        Self {
            kind: DeviceKind::CxlFabric,
            read_lat_ns: 400,
            write_lat_ns: 400,
            read_bw_bytes_per_ns: 32.0,
            write_bw_bytes_per_ns: 32.0,
            access_granularity: 64,
            concurrency_exponent: 0.75,
        }
    }

    /// Model for a device kind.
    pub fn of(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Dram => Self::dram(),
            DeviceKind::Pmem => Self::pmem(),
            DeviceKind::FlashSsd => Self::flash_ssd(),
            DeviceKind::CxlFabric => Self::cxl_fabric(),
        }
    }

    /// Round a byte count up to the device's access granularity.
    #[inline]
    pub fn rounded(&self, bytes: u64) -> u64 {
        let g = self.access_granularity;
        bytes.div_ceil(g) * g
    }

    /// Virtual-time cost of a single random read of `bytes`.
    #[inline]
    pub fn read_ns(&self, bytes: u64) -> Nanos {
        self.read_lat_ns + (self.rounded(bytes) as f64 / self.read_bw_bytes_per_ns) as Nanos
    }

    /// Virtual-time cost of a single persistent write of `bytes`
    /// (for PMem this is the CLWB+transfer cost to the persistence domain).
    #[inline]
    pub fn write_ns(&self, bytes: u64) -> Nanos {
        self.write_lat_ns + (self.rounded(bytes) as f64 / self.write_bw_bytes_per_ns) as Nanos
    }

    /// Fraction of peak aggregate bandwidth retained when `streams`
    /// concurrent requesters hammer the device. Effective per-stream
    /// bandwidth = peak * efficiency / streams.
    ///
    /// efficiency(k) = k^(e-1) with e = `concurrency_exponent`, so DRAM at
    /// 16 streams retains ~92% of peak while PMem retains ~22% — matching
    /// the published Optane behaviour under bursty small writes and the
    /// paper's observed 3.17× PMem-Hash slowdown at 16 GPUs.
    #[inline]
    pub fn concurrency_efficiency(&self, streams: u32) -> f64 {
        if streams <= 1 {
            return 1.0;
        }
        (streams as f64).powf(self.concurrency_exponent - 1.0)
    }

    /// Aggregate time to move `total_bytes` (reads) when `streams`
    /// concurrent requesters share the device.
    pub fn shared_read_ns(&self, total_bytes: u64, streams: u32) -> Nanos {
        let eff_bw = self.read_bw_bytes_per_ns * self.concurrency_efficiency(streams);
        self.read_lat_ns + (self.rounded(total_bytes) as f64 / eff_bw) as Nanos
    }

    /// Aggregate time to move `total_bytes` (writes) when `streams`
    /// concurrent requesters share the device.
    pub fn shared_write_ns(&self, total_bytes: u64, streams: u32) -> Nanos {
        let eff_bw = self.write_bw_bytes_per_ns * self.concurrency_efficiency(streams);
        self.write_lat_ns + (self.rounded(total_bytes) as f64 / eff_bw) as Nanos
    }

    /// The [`CostKind`] bucket a read on this device charges to.
    pub fn read_cost_kind(&self) -> CostKind {
        match self.kind {
            DeviceKind::Dram => CostKind::DramTransfer,
            DeviceKind::Pmem => CostKind::PmemRead,
            DeviceKind::FlashSsd => CostKind::SsdTransfer,
            DeviceKind::CxlFabric => CostKind::FabricTransfer,
        }
    }

    /// The [`CostKind`] bucket a write on this device charges to.
    pub fn write_cost_kind(&self) -> CostKind {
        match self.kind {
            DeviceKind::Dram => CostKind::DramTransfer,
            DeviceKind::Pmem => CostKind::PmemWrite,
            DeviceKind::FlashSsd => CostKind::SsdTransfer,
            DeviceKind::CxlFabric => CostKind::FabricTransfer,
        }
    }

    /// Charge a read of `bytes` to `cost`.
    #[inline]
    pub fn charge_read(&self, bytes: u64, cost: &mut Cost) {
        cost.charge(self.read_cost_kind(), self.read_ns(bytes));
    }

    /// Charge a persistent write of `bytes` to `cost`.
    #[inline]
    pub fn charge_write(&self, bytes: u64, cost: &mut Cost) {
        cost.charge(self.write_cost_kind(), self.write_ns(bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets_match_paper() {
        let d = DeviceTiming::dram();
        assert_eq!(d.read_lat_ns, 81);
        assert_eq!(d.write_lat_ns, 86);
        let p = DeviceTiming::pmem();
        assert_eq!(p.read_lat_ns, 305);
        assert_eq!(p.write_lat_ns, 94);
        // Bandwidth ratios from the paper: PMem read ≈ 1/3 DRAM,
        // write ≈ 1/5 DRAM.
        assert!((d.read_bw_bytes_per_ns / p.read_bw_bytes_per_ns - 3.0).abs() < 0.1);
        assert!((d.write_bw_bytes_per_ns / p.write_bw_bytes_per_ns - 5.6).abs() < 0.1);
        // SSD latency two orders of magnitude beyond PMem.
        assert!(DeviceTiming::flash_ssd().read_lat_ns >= 10_000);
    }

    #[test]
    fn read_write_cost_scales_with_bytes() {
        let p = DeviceTiming::pmem();
        let small = p.read_ns(64);
        let big = p.read_ns(64 * 1024);
        assert!(big > small);
        // 64 bytes at 39 B/ns is ~1-2ns, dominated by latency.
        assert!((305..=310).contains(&small));
        // 1 MiB write at 14 B/ns ≈ 74.9k ns + latency.
        let w = p.write_ns(1 << 20);
        assert!((74_000..80_000).contains(&w), "w={w}");
    }

    #[test]
    fn granularity_rounding() {
        let s = DeviceTiming::flash_ssd();
        assert_eq!(s.rounded(1), 4096);
        assert_eq!(s.rounded(4096), 4096);
        assert_eq!(s.rounded(4097), 8192);
        let d = DeviceTiming::dram();
        assert_eq!(d.rounded(1), 64);
        assert_eq!(d.rounded(65), 128);
    }

    #[test]
    fn pmem_collapses_under_concurrency_dram_does_not() {
        let d = DeviceTiming::dram();
        let p = DeviceTiming::pmem();
        let d16 = d.concurrency_efficiency(16);
        let p16 = p.concurrency_efficiency(16);
        assert!(d16 > 0.9, "DRAM retains ≥90%: {d16}");
        assert!(p16 < 0.35, "PMem collapses: {p16}");
        // Efficiency is monotonically non-increasing in streams.
        assert!(p.concurrency_efficiency(4) > p.concurrency_efficiency(8));
        assert_eq!(p.concurrency_efficiency(1), 1.0);
    }

    #[test]
    fn charge_goes_to_correct_bucket() {
        let mut c = Cost::new();
        DeviceTiming::pmem().charge_read(256, &mut c);
        DeviceTiming::pmem().charge_write(256, &mut c);
        DeviceTiming::dram().charge_read(256, &mut c);
        assert_eq!(c.ops(CostKind::PmemRead), 1);
        assert_eq!(c.ops(CostKind::PmemWrite), 1);
        assert_eq!(c.ops(CostKind::DramTransfer), 1);
    }

    #[test]
    fn shared_bandwidth_slower_than_exclusive() {
        let p = DeviceTiming::pmem();
        let alone = p.shared_write_ns(1 << 20, 1);
        let crowded = p.shared_write_ns(1 << 20, 16);
        assert!(crowded > 2 * alone, "alone={alone} crowded={crowded}");
    }
}
