//! Log-bucketed latency histograms (HdrHistogram-style, fixed memory).
//!
//! Production parameter servers report tail latencies, not means: a p99
//! pull stall delays the whole synchronous batch (every worker waits at
//! the barrier). The trainer records per-batch phase durations here and
//! reports p50/p95/p99 alongside totals.

use crate::clock::Nanos;
use serde::Serialize;

/// Sub-buckets per power of two (higher = finer resolution; 8 gives
/// ≤ 12.5 % relative error, plenty for tail reporting).
const SUBBUCKETS: usize = 8;
/// Powers of two covered: 1 ns … ~1.2 × 10¹⁸ ns.
const BUCKETS: usize = 60;

/// A fixed-size log-bucketed histogram of nanosecond values.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: Nanos,
    min: Nanos,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS * SUBBUCKETS],
            total: 0,
            max: 0,
            min: Nanos::MAX,
        }
    }

    fn bucket_of(v: Nanos) -> usize {
        if v == 0 {
            return 0;
        }
        let pow = 63 - v.leading_zeros() as usize; // floor(log2 v)
        let sub = if pow == 0 {
            0
        } else {
            // Position within the power-of-two range, in SUBBUCKETS
            // steps (u128 to avoid overflow at the top of the range).
            (((v - (1u64 << pow)) as u128 * SUBBUCKETS as u128) >> pow) as usize
        };
        (pow * SUBBUCKETS + sub).min(BUCKETS * SUBBUCKETS - 1)
    }

    /// Representative (upper-edge) value of a bucket.
    fn bucket_value(idx: usize) -> Nanos {
        let pow = idx / SUBBUCKETS;
        let sub = idx % SUBBUCKETS;
        (1u64 << pow) + (((sub as u64 + 1) << pow) / SUBBUCKETS as u64)
    }

    /// Record one value.
    pub fn record(&mut self, v: Nanos) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min(&self) -> Nanos {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` ∈ [0, 1], within bucket resolution.
    pub fn quantile(&self, q: f64) -> Nanos {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// `p50/p95/p99/max` summary line in milliseconds.
    pub fn summary_ms(&self) -> String {
        format!(
            "p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms (n={})",
            self.quantile(0.50) as f64 / 1e6,
            self.quantile(0.95) as f64 / 1e6,
            self.quantile(0.99) as f64 / 1e6,
            self.max as f64 / 1e6,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.15, "p50 = {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.15, "p99 = {p99}");
        assert_eq!(h.max(), 10_000);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn heavy_tail_visible_in_p99_not_p50() {
        let mut h = LatencyHistogram::new();
        for _ in 0..990 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000); // 1 ms stalls
        }
        assert!(h.quantile(0.5) < 2_000);
        assert!(
            h.quantile(0.995) >= 900_000,
            "tail captured: {}",
            h.quantile(0.995)
        );
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(100);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 100);
    }

    #[test]
    fn bucket_monotonicity() {
        // Bucket index is non-decreasing in the value.
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 7, 8, 9, 100, 1_000, 1 << 20, u64::MAX / 2] {
            let b = LatencyHistogram::bucket_of(v);
            assert!(b >= last, "bucket({v}) = {b} < {last}");
            last = b;
        }
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > 0);
    }
}
