//! # oe-simdevice
//!
//! Simulated storage devices for the OpenEmbedding reproduction.
//!
//! Real Intel Optane PMem is unavailable in this environment, so this crate
//! provides the two things the paper's design actually depends on:
//!
//! 1. **A calibrated timing model** ([`DeviceTiming`]) for DRAM, PMem and
//!    Flash SSD, using the bandwidth/latency numbers from Table I of the
//!    paper, plus a concurrency-degradation model (PMem loses much more
//!    effective bandwidth under bursty parallel access than DRAM — the root
//!    cause of the paper's Observation 1).
//! 2. **A crash-consistent byte-addressable media** ([`Media`]) with CPU
//!    cache-line shadowing, explicit [`Media::flush`] / [`Media::fence`]
//!    (CLWB / SFENCE equivalents) and *seeded torn-write crash injection*
//!    ([`Media::crash`]): dirty lines vanish, flushed-but-unfenced lines
//!    persist with probability ½. This makes persistence-ordering bugs —
//!    which on real hardware only surface as silent corruption after a power
//!    loss — reproducible in unit and property tests.
//!
//! Virtual time is tracked through [`Cost`] sinks: storage operations never
//! sleep, they *charge* nanoseconds, and the training simulator in
//! `oe-train` composes those charges into end-to-end phase times.

pub mod clock;
pub mod contention;
pub mod cost;
pub mod device;
pub mod hist;
pub mod media;
pub mod overlap;

pub use clock::{Nanos, VirtualClock};
pub use contention::{amdahl_burst, shared_bandwidth_ns, ContentionModel};
pub use cost::{Cost, CostKind};
pub use device::{DeviceKind, DeviceTiming};
pub use hist::LatencyHistogram;
pub use media::{CrashImage, CrashPlan, Media, MediaConfig, CACHE_LINE};
pub use overlap::PipelineWindow;
