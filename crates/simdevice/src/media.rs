//! A simulated byte-addressable storage media with crash semantics.
//!
//! [`Media`] models the path a store takes on a real machine with Optane
//! PMem:
//!
//! ```text
//!   store → CPU cache (volatile)          [Media::write   → Dirty line]
//!   CLWB  → write-pending queue           [Media::flush   → Flushed line]
//!   SFENCE→ persistence domain (durable)  [Media::fence   → durable bytes]
//! ```
//!
//! On a crash ([`Media::crash`]), dirty lines vanish, fenced lines survive,
//! and flushed-but-unfenced lines each survive independently with
//! probability ½ (seeded, deterministic) — the torn-write window that makes
//! real PMem programming error-prone (paper §II-B, refs. 18–22).
//!
//! A `Media` with [`DeviceKind::Dram`] is volatile: crash loses everything.
//! A `Media` with [`DeviceKind::FlashSsd`] is write-through durable (we
//! model checkpoint files on SSD as synced on write).
//!
//! All operations charge virtual time to a [`Cost`] sink using the
//! device's [`DeviceTiming`].

use crate::cost::{Cost, CostKind};
use crate::device::{DeviceKind, DeviceTiming};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Cache line size in bytes — the persistence granularity of PMem.
pub const CACHE_LINE: usize = 64;

/// Fence (SFENCE + drain) CPU cost in nanoseconds.
const FENCE_NS: u64 = 30;

/// Configuration for a [`Media`].
#[derive(Debug, Clone, Copy)]
pub struct MediaConfig {
    /// Device class being simulated.
    pub device: DeviceKind,
    /// Initial capacity in bytes (the media grows on demand beyond this).
    pub capacity: usize,
}

impl MediaConfig {
    /// PMem media with the given initial capacity.
    pub fn pmem(capacity: usize) -> Self {
        Self {
            device: DeviceKind::Pmem,
            capacity,
        }
    }

    /// Volatile DRAM media.
    pub fn dram(capacity: usize) -> Self {
        Self {
            device: DeviceKind::Dram,
            capacity,
        }
    }

    /// Write-through SSD media.
    pub fn ssd(capacity: usize) -> Self {
        Self {
            device: DeviceKind::FlashSsd,
            capacity,
        }
    }
}

#[derive(Clone)]
struct DirtyLine {
    data: [u8; CACHE_LINE],
    /// CLWB issued but not yet fenced.
    flushed: bool,
}

/// A programmable crash trigger for exhaustive crash-point enumeration:
/// when the `at_event`-th persistence event (see
/// [`Media::persistence_events`]) is about to execute, the media captures
/// a [`CrashImage`] of the state *before* that event applies, resolving
/// torn writes with `seed`. The run then continues normally; the harness
/// collects the image with [`Media::take_crash_capture`] afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based persistence-event index to crash at. The image reflects
    /// events `0..at_event` having executed; event `at_event` has not.
    pub at_event: u64,
    /// Torn-write resolution seed (same semantics as [`Media::crash`]).
    pub seed: u64,
}

struct MediaInner {
    /// Bytes guaranteed to survive a crash (the persistence domain).
    durable: Vec<u8>,
    /// Volatile CPU-cache shadow, keyed by line number.
    lines: HashMap<u64, DirtyLine>,
    /// Snapshots of flushed lines that were overwritten before a fence:
    /// their flushed content may still land on media. Applied in order.
    pending: Vec<(u64, [u8; CACHE_LINE])>,
    /// Monotonic count of persistence events executed so far (every
    /// PMem `flush` and `fence` call; `persist` counts as two).
    events: u64,
    /// Armed crash trigger, if any.
    plan: Option<CrashPlan>,
    /// Image captured by the armed plan.
    capture: Option<CrashImage>,
}

/// The durable state extracted at a crash point. Rehydrate with
/// [`Media::from_crash`] to simulate a post-restart process.
#[derive(Clone)]
pub struct CrashImage {
    bytes: Vec<u8>,
    device: DeviceKind,
}

impl CrashImage {
    /// Raw durable bytes at the crash point.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Device class the image was captured from.
    pub fn device(&self) -> DeviceKind {
        self.device
    }

    /// Reconstruct an image (snapshot-file loading).
    pub fn from_parts(bytes: Vec<u8>, device: DeviceKind) -> Self {
        Self { bytes, device }
    }
}

/// Simulated storage media. See module docs.
pub struct Media {
    timing: DeviceTiming,
    inner: RwLock<MediaInner>,
}

impl Media {
    /// Create a media per `cfg`, zero-initialized.
    pub fn new(cfg: MediaConfig) -> Self {
        Self {
            timing: DeviceTiming::of(cfg.device),
            inner: RwLock::new(MediaInner {
                durable: vec![0u8; cfg.capacity],
                lines: HashMap::new(),
                pending: Vec::new(),
                events: 0,
                plan: None,
                capture: None,
            }),
        }
    }

    /// Rebuild a media from a crash image (simulates process restart with
    /// the persistence domain contents intact).
    pub fn from_crash(image: CrashImage) -> Self {
        Self {
            timing: DeviceTiming::of(image.device),
            inner: RwLock::new(MediaInner {
                durable: image.bytes,
                lines: HashMap::new(),
                pending: Vec::new(),
                events: 0,
                plan: None,
                capture: None,
            }),
        }
    }

    /// The device timing model in use.
    pub fn timing(&self) -> &DeviceTiming {
        &self.timing
    }

    /// Current capacity in bytes.
    pub fn len(&self) -> usize {
        self.inner.read().durable.len()
    }

    /// True if capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lines currently dirty or flushed-unfenced (volatile).
    pub fn volatile_lines(&self) -> usize {
        let g = self.inner.read();
        g.lines.len() + g.pending.len()
    }

    fn line_of(off: u64) -> u64 {
        off / CACHE_LINE as u64
    }

    /// Write `data` at `off`. For PMem this lands in the volatile cache
    /// shadow (cheap CPU store); durability requires [`Self::flush`] +
    /// [`Self::fence`]. For DRAM/SSD the write is applied directly
    /// (volatile resp. write-through) and charged at device write cost.
    pub fn write(&self, off: u64, data: &[u8], cost: &mut Cost) {
        if data.is_empty() {
            return;
        }
        let mut g = self.inner.write();
        let end = off as usize + data.len();
        if g.durable.len() < end {
            g.durable.resize(end.next_power_of_two(), 0);
        }
        match self.timing.kind {
            DeviceKind::Dram | DeviceKind::FlashSsd | DeviceKind::CxlFabric => {
                g.durable[off as usize..end].copy_from_slice(data);
                cost.charge(
                    self.timing.write_cost_kind(),
                    self.timing.write_ns(data.len() as u64),
                );
            }
            DeviceKind::Pmem => {
                // Store goes through the CPU cache: charge only the store
                // issue cost; persistence is charged at flush time.
                cost.charge(CostKind::Cpu, 1 + data.len() as u64 / 64);
                let first = Self::line_of(off);
                let last = Self::line_of(off + data.len() as u64 - 1);
                for line in first..=last {
                    let line_start = line * CACHE_LINE as u64;
                    // Base content: existing shadow, else durable bytes.
                    let existing = g.lines.get(&line).map(|dl| (dl.data, dl.flushed));
                    let mut entry = match existing {
                        Some((data, flushed)) => {
                            if flushed {
                                // The flushed version may still persist:
                                // snapshot it before overwriting.
                                g.pending.push((line, data));
                            }
                            DirtyLine {
                                data,
                                flushed: false,
                            }
                        }
                        None => {
                            let mut buf = [0u8; CACHE_LINE];
                            let s = line_start as usize;
                            let e = (s + CACHE_LINE).min(g.durable.len());
                            buf[..e - s].copy_from_slice(&g.durable[s..e]);
                            DirtyLine {
                                data: buf,
                                flushed: false,
                            }
                        }
                    };
                    // Copy the overlapping part of `data` into the line.
                    let copy_start = off.max(line_start);
                    let copy_end = (off + data.len() as u64).min(line_start + CACHE_LINE as u64);
                    let src = (copy_start - off) as usize..(copy_end - off) as usize;
                    let dst = (copy_start - line_start) as usize..(copy_end - line_start) as usize;
                    entry.data[dst].copy_from_slice(&data[src]);
                    g.lines.insert(line, entry);
                }
            }
        }
    }

    /// Read `buf.len()` bytes from `off`, observing the volatile shadow
    /// (a CPU always sees its own cached stores).
    pub fn read(&self, off: u64, buf: &mut [u8], cost: &mut Cost) {
        if buf.is_empty() {
            return;
        }
        let g = self.inner.read();
        let end = off as usize + buf.len();
        assert!(
            end <= g.durable.len(),
            "media read out of bounds: {}..{} > {}",
            off,
            end,
            g.durable.len()
        );
        buf.copy_from_slice(&g.durable[off as usize..end]);
        if self.timing.kind == DeviceKind::Pmem && !g.lines.is_empty() {
            let first = Self::line_of(off);
            let last = Self::line_of(off + buf.len() as u64 - 1);
            for line in first..=last {
                if let Some(dl) = g.lines.get(&line) {
                    let line_start = line * CACHE_LINE as u64;
                    let copy_start = off.max(line_start);
                    let copy_end = (off + buf.len() as u64).min(line_start + CACHE_LINE as u64);
                    let dst = (copy_start - off) as usize..(copy_end - off) as usize;
                    let src = (copy_start - line_start) as usize..(copy_end - line_start) as usize;
                    buf[dst].copy_from_slice(&dl.data[src]);
                }
            }
        }
        cost.charge(
            self.timing.read_cost_kind(),
            self.timing.read_ns(buf.len() as u64),
        );
    }

    /// Issue CLWB for every dirty line overlapping `[off, off+len)`.
    /// Charges the PMem write cost for the flushed bytes. A no-op on
    /// DRAM/SSD media.
    pub fn flush(&self, off: u64, len: u64, cost: &mut Cost) {
        if self.timing.kind != DeviceKind::Pmem || len == 0 {
            return;
        }
        let mut g = self.inner.write();
        Self::note_event(&mut g);
        let first = Self::line_of(off);
        let last = Self::line_of(off + len - 1);
        let mut flushed_lines = 0u64;
        for line in first..=last {
            if let Some(dl) = g.lines.get_mut(&line) {
                if !dl.flushed {
                    dl.flushed = true;
                    flushed_lines += 1;
                }
            }
        }
        if flushed_lines > 0 {
            cost.charge(
                CostKind::PmemWrite,
                self.timing.write_ns(flushed_lines * CACHE_LINE as u64),
            );
        }
    }

    /// SFENCE: every line flushed before this call becomes durable.
    pub fn fence(&self, cost: &mut Cost) {
        if self.timing.kind != DeviceKind::Pmem {
            return;
        }
        let mut g = self.inner.write();
        Self::note_event(&mut g);
        cost.charge(CostKind::Cpu, FENCE_NS);
        let pending = std::mem::take(&mut g.pending);
        for (line, data) in pending {
            Self::apply_line(&mut g.durable, line, &data);
        }
        let fenced: Vec<u64> = g
            .lines
            .iter()
            .filter(|(_, dl)| dl.flushed)
            .map(|(&l, _)| l)
            .collect();
        for line in fenced {
            let dl = g.lines.remove(&line).expect("line present");
            Self::apply_line(&mut g.durable, line, &dl.data);
        }
    }

    /// Convenience: flush + fence for a range.
    pub fn persist(&self, off: u64, len: u64, cost: &mut Cost) {
        self.flush(off, len, cost);
        self.fence(cost);
    }

    fn apply_line(durable: &mut Vec<u8>, line: u64, data: &[u8; CACHE_LINE]) {
        let s = line as usize * CACHE_LINE;
        if durable.len() < s + CACHE_LINE {
            durable.resize((s + CACHE_LINE).next_power_of_two(), 0);
        }
        durable[s..s + CACHE_LINE].copy_from_slice(data);
    }

    /// Simulate a power failure at this instant. Deterministic given
    /// `seed`:
    /// - DRAM media: everything is lost (zeroed image of the same size).
    /// - SSD media: write-through, everything survives.
    /// - PMem media: durable bytes survive; each flushed-but-unfenced line
    ///   (including superseded pending snapshots, in write order) lands on
    ///   media independently with probability ½; dirty lines are lost.
    pub fn crash(&self, seed: u64) -> CrashImage {
        let g = self.inner.read();
        match self.timing.kind {
            DeviceKind::Dram => CrashImage {
                bytes: vec![0u8; g.durable.len()],
                device: DeviceKind::Dram,
            },
            DeviceKind::FlashSsd => CrashImage {
                bytes: g.durable.clone(),
                device: DeviceKind::FlashSsd,
            },
            // Fabric-attached pool media outlives the node: the write
            // path applies stores directly, so everything survives.
            DeviceKind::CxlFabric => CrashImage {
                bytes: g.durable.clone(),
                device: DeviceKind::CxlFabric,
            },
            DeviceKind::Pmem => Self::pmem_image(&g, seed),
        }
    }

    /// Torn-write crash image of PMem state `g`: durable bytes plus each
    /// flushed-but-unfenced line (superseded pending snapshots first, in
    /// write order) landing independently with probability ½.
    fn pmem_image(g: &MediaInner, seed: u64) -> CrashImage {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = g.durable.clone();
        for (line, data) in &g.pending {
            if rng.gen_bool(0.5) {
                let mut b = std::mem::take(&mut bytes);
                Self::apply_line(&mut b, *line, data);
                bytes = b;
            }
        }
        // Deterministic iteration order: sort lines.
        let mut flushed: Vec<(&u64, &DirtyLine)> =
            g.lines.iter().filter(|(_, dl)| dl.flushed).collect();
        flushed.sort_by_key(|(l, _)| **l);
        for (line, dl) in flushed {
            if rng.gen_bool(0.5) {
                let mut b = std::mem::take(&mut bytes);
                Self::apply_line(&mut b, *line, &dl.data);
                bytes = b;
            }
        }
        CrashImage {
            bytes,
            device: DeviceKind::Pmem,
        }
    }

    /// Count one persistence event; if an armed [`CrashPlan`] names this
    /// index, capture the crash image *before* the event applies.
    fn note_event(g: &mut MediaInner) {
        if let Some(plan) = g.plan {
            if g.events == plan.at_event && g.capture.is_none() {
                g.capture = Some(Self::pmem_image(g, plan.seed));
            }
        }
        g.events += 1;
    }

    /// Persistence events executed so far: every PMem [`Self::flush`] and
    /// [`Self::fence`] call gets one monotonically increasing index
    /// ([`Self::persist`] counts as two). The stream is deterministic for
    /// a deterministic workload, which is what makes exhaustive
    /// crash-point enumeration possible.
    pub fn persistence_events(&self) -> u64 {
        self.inner.read().events
    }

    /// Arm a [`CrashPlan`]: when persistence event `plan.at_event` is
    /// about to execute, a crash image of the state before it is captured
    /// (the run continues). Replaces any previous plan and discards any
    /// previous capture.
    pub fn arm_crash_plan(&self, plan: CrashPlan) {
        let mut g = self.inner.write();
        g.plan = Some(plan);
        g.capture = None;
    }

    /// Remove the armed plan, keeping any capture already taken.
    pub fn disarm_crash_plan(&self) {
        self.inner.write().plan = None;
    }

    /// Take the image captured by an armed [`CrashPlan`], if the planned
    /// event was reached.
    pub fn take_crash_capture(&self) -> Option<CrashImage> {
        self.inner.write().capture.take()
    }

    /// Read bytes as they would survive a crash *right now* assuming all
    /// flushed lines made it (optimistic durable view). Test helper.
    pub fn read_durable(&self, off: u64, buf: &mut [u8]) {
        let g = self.inner.read();
        let end = off as usize + buf.len();
        assert!(end <= g.durable.len());
        buf.copy_from_slice(&g.durable[off as usize..end]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmem() -> Media {
        Media::new(MediaConfig::pmem(4096))
    }

    #[test]
    fn write_read_roundtrip_sees_shadow() {
        let m = pmem();
        let mut cost = Cost::new();
        m.write(100, b"hello world", &mut cost);
        let mut buf = [0u8; 11];
        m.read(100, &mut buf, &mut cost);
        assert_eq!(&buf, b"hello world");
        // Not yet durable.
        let mut d = [0u8; 11];
        m.read_durable(100, &mut d);
        assert_eq!(&d, &[0u8; 11]);
    }

    #[test]
    fn persist_makes_durable() {
        let m = pmem();
        let mut cost = Cost::new();
        m.write(0, b"abc", &mut cost);
        m.persist(0, 3, &mut cost);
        let mut d = [0u8; 3];
        m.read_durable(0, &mut d);
        assert_eq!(&d, b"abc");
        assert_eq!(m.volatile_lines(), 0);
        assert!(cost.ns(CostKind::PmemWrite) >= 94);
    }

    #[test]
    fn crash_loses_dirty_lines() {
        let m = pmem();
        let mut cost = Cost::new();
        m.write(0, b"durable!", &mut cost);
        m.persist(0, 8, &mut cost);
        m.write(256, b"volatile", &mut cost); // never flushed
        let img = m.crash(42);
        assert_eq!(&img.bytes()[0..8], b"durable!");
        assert_eq!(&img.bytes()[256..264], &[0u8; 8]);
    }

    #[test]
    fn crash_keeps_fenced_lines_always() {
        for seed in 0..16 {
            let m = pmem();
            let mut cost = Cost::new();
            m.write(64, b"fenced", &mut cost);
            m.persist(64, 6, &mut cost);
            let img = m.crash(seed);
            assert_eq!(&img.bytes()[64..70], b"fenced");
        }
    }

    #[test]
    fn flushed_unfenced_lines_tear() {
        // A flushed-but-unfenced line should persist for some seeds and
        // not others.
        let mut survived = 0;
        let mut lost = 0;
        for seed in 0..64 {
            let m = pmem();
            let mut cost = Cost::new();
            m.write(0, b"torn", &mut cost);
            m.flush(0, 4, &mut cost); // no fence!
            let img = m.crash(seed);
            if &img.bytes()[0..4] == b"torn" {
                survived += 1;
            } else {
                lost += 1;
            }
        }
        assert!(survived > 10, "some seeds persist: {survived}");
        assert!(lost > 10, "some seeds lose: {lost}");
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let build = || {
            let m = pmem();
            let mut cost = Cost::new();
            for i in 0..8u64 {
                m.write(i * 64, &[i as u8 + 1; 64], &mut cost);
            }
            m.flush(0, 512, &mut cost); // unfenced
            m
        };
        let a = build().crash(7);
        let b = build().crash(7);
        assert_eq!(a.bytes(), b.bytes());
        let c = build().crash(8);
        // Extremely likely to differ with 8 torn lines.
        assert_ne!(a.bytes(), c.bytes());
    }

    #[test]
    fn overwrite_of_flushed_line_snapshots_pending() {
        let m = pmem();
        let mut cost = Cost::new();
        m.write(0, b"AAAA", &mut cost);
        m.flush(0, 4, &mut cost);
        // Overwrite before fence: old flushed content goes to pending.
        m.write(0, b"BBBB", &mut cost);
        m.fence(&mut cost); // commits the pending "AAAA" snapshot
        let mut d = [0u8; 4];
        m.read_durable(0, &mut d);
        assert_eq!(&d, b"AAAA");
        // The CPU still sees BBBB.
        let mut v = [0u8; 4];
        m.read(0, &mut v, &mut cost);
        assert_eq!(&v, b"BBBB");
    }

    #[test]
    fn dram_media_loses_all_on_crash() {
        let m = Media::new(MediaConfig::dram(128));
        let mut cost = Cost::new();
        m.write(0, b"gone", &mut cost);
        let img = m.crash(1);
        assert_eq!(&img.bytes()[0..4], &[0u8; 4]);
    }

    #[test]
    fn ssd_media_is_write_through() {
        let m = Media::new(MediaConfig::ssd(8192));
        let mut cost = Cost::new();
        m.write(4096, b"kept", &mut cost);
        let img = m.crash(1);
        assert_eq!(&img.bytes()[4096..4100], b"kept");
        assert!(cost.ns(CostKind::SsdTransfer) > 10_000);
    }

    #[test]
    fn rehydrate_from_crash_image() {
        let m = pmem();
        let mut cost = Cost::new();
        m.write(0, b"persisted", &mut cost);
        m.persist(0, 9, &mut cost);
        let m2 = Media::from_crash(m.crash(3));
        let mut buf = [0u8; 9];
        m2.read(0, &mut buf, &mut cost);
        assert_eq!(&buf, b"persisted");
    }

    #[test]
    fn media_grows_on_demand() {
        let m = Media::new(MediaConfig::pmem(64));
        let mut cost = Cost::new();
        m.write(10_000, b"far", &mut cost);
        m.persist(10_000, 3, &mut cost);
        assert!(m.len() >= 10_003);
        let mut buf = [0u8; 3];
        m.read(10_000, &mut buf, &mut cost);
        assert_eq!(&buf, b"far");
    }

    #[test]
    fn persistence_events_count_flush_and_fence() {
        let m = pmem();
        let mut cost = Cost::new();
        assert_eq!(m.persistence_events(), 0);
        m.write(0, b"x", &mut cost);
        assert_eq!(m.persistence_events(), 0, "stores are not events");
        m.flush(0, 1, &mut cost);
        assert_eq!(m.persistence_events(), 1);
        m.fence(&mut cost);
        assert_eq!(m.persistence_events(), 2);
        m.persist(64, 8, &mut cost);
        assert_eq!(m.persistence_events(), 4, "persist = flush + fence");
        // Non-PMem media never count events.
        let d = Media::new(MediaConfig::dram(128));
        d.write(0, b"x", &mut cost);
        d.flush(0, 1, &mut cost);
        d.fence(&mut cost);
        assert_eq!(d.persistence_events(), 0);
    }

    #[test]
    fn crash_plan_captures_state_before_event() {
        // Events: 0 = flush("AA"), 1 = fence, 2 = flush("BB"), 3 = fence.
        let run = |plan: Option<CrashPlan>| {
            let m = pmem();
            let mut cost = Cost::new();
            if let Some(p) = plan {
                m.arm_crash_plan(p);
            }
            m.write(0, b"AA", &mut cost);
            m.persist(0, 2, &mut cost);
            m.write(0, b"BB", &mut cost);
            m.persist(0, 2, &mut cost);
            m
        };
        // Crash before event 2 (second flush): only "AA" is durable.
        let m = run(Some(CrashPlan {
            at_event: 2,
            seed: 1,
        }));
        let img = m.take_crash_capture().expect("event reached");
        assert_eq!(&img.bytes()[0..2], b"AA");
        // Crash before event 0: nothing durable yet.
        let m = run(Some(CrashPlan {
            at_event: 0,
            seed: 1,
        }));
        let img = m.take_crash_capture().unwrap();
        assert_eq!(&img.bytes()[0..2], &[0u8; 2]);
        // Plan beyond the run: no capture, run unaffected.
        let m = run(Some(CrashPlan {
            at_event: 99,
            seed: 1,
        }));
        assert!(m.take_crash_capture().is_none());
        let mut d = [0u8; 2];
        m.read_durable(0, &mut d);
        assert_eq!(&d, b"BB");
    }

    #[test]
    fn crash_plan_capture_matches_direct_crash() {
        // Capturing at event k must equal crashing a twin run stopped
        // right before event k, for the same seed.
        let build_to = |stop_before: u64| {
            let m = pmem();
            let mut cost = Cost::new();
            type MediaOp = Box<dyn Fn(&Media, &mut Cost)>;
            let ops: Vec<MediaOp> = vec![
                Box::new(|m, c| m.write(0, b"1111", c)),
                Box::new(|m, c| m.flush(0, 4, c)), // event 0
                Box::new(|m, c| m.write(64, b"2222", c)),
                Box::new(|m, c| m.flush(64, 4, c)), // event 1
                Box::new(|m, c| m.fence(c)),        // event 2
            ];
            for op in ops {
                if m.persistence_events() == stop_before {
                    break;
                }
                op(&m, &mut cost);
            }
            m
        };
        for k in 0..3u64 {
            // Full run on a fresh armed media.
            let armed = pmem();
            armed.arm_crash_plan(CrashPlan {
                at_event: k,
                seed: 7,
            });
            let mut cost = Cost::new();
            armed.write(0, b"1111", &mut cost);
            armed.flush(0, 4, &mut cost);
            armed.write(64, b"2222", &mut cost);
            armed.flush(64, 4, &mut cost);
            armed.fence(&mut cost);
            let cap = armed.take_crash_capture().expect("reached");
            let direct = build_to(k).crash(7);
            assert_eq!(cap.bytes(), direct.bytes(), "event {k}");
        }
    }

    #[test]
    fn rearming_plan_discards_previous_capture() {
        let m = pmem();
        let mut cost = Cost::new();
        m.arm_crash_plan(CrashPlan {
            at_event: 0,
            seed: 1,
        });
        m.write(0, b"AA", &mut cost);
        m.persist(0, 2, &mut cost);
        m.arm_crash_plan(CrashPlan {
            at_event: 3,
            seed: 1,
        });
        m.write(0, b"BB", &mut cost);
        m.persist(0, 2, &mut cost); // events 2 (flush), 3 (fence)
        let img = m.take_crash_capture().expect("second plan fired");
        // Before event 3 the "BB" line is flushed-unfenced: seed decides.
        let b = &img.bytes()[0..2];
        assert!(b == b"AA" || b == b"BB");
        assert!(m.take_crash_capture().is_none(), "capture is taken once");
    }

    #[test]
    fn costs_charged_to_right_buckets() {
        let m = pmem();
        let mut c = Cost::new();
        m.write(0, &[0u8; 256], &mut c);
        assert_eq!(c.ns(CostKind::PmemWrite), 0, "store is cache-level");
        m.flush(0, 256, &mut c);
        assert!(c.ns(CostKind::PmemWrite) > 0);
        let mut buf = [0u8; 256];
        m.read(0, &mut buf, &mut c);
        assert!(c.ns(CostKind::PmemRead) >= 305);
    }
}
