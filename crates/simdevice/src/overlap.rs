//! Stage-level overlap accounting for pipelined training windows.
//!
//! [`crate::Cost::merge_parallel`] answers the *device-level* question:
//! given per-lane costs of one burst, what is the burst's critical
//! path? This module answers the same question one level up, for whole
//! pipeline *stages*: when a window of training overlaps GPU compute,
//! deferred cache maintenance, and out-of-band parameter-server work
//! (prefetch pulls for the next batch, bounded-staleness push applies),
//! the window's duration is the **max over the overlapping lanes**, not
//! their sum — each lane runs on its own resource (GPU, maintainer
//! threads, PS service threads).
//!
//! Serial segments (the exposed pull residue at window start, a
//! checkpoint drain at window end) do not overlap anything and are
//! added outside the max. [`PipelineWindow`] keeps the lane ledger for
//! one window and reports both the critical path and how much work the
//! overlap *hid* — the quantity the pipelined-training frontier plots.

use crate::clock::Nanos;

/// Named lanes of one pipelined training window.
///
/// A lane accumulates virtual nanoseconds of work that runs
/// concurrently with every other lane; `critical_ns` is the window's
/// overlapped duration (max over lanes, the stage-level analogue of the
/// `merge_parallel` lane rule). Lanes are keyed by `&'static str` so
/// call sites read like the stage diagram ("gpu", "maintain", "ps").
#[derive(Debug, Default, Clone)]
pub struct PipelineWindow {
    lanes: Vec<(&'static str, Nanos)>,
}

impl PipelineWindow {
    /// An empty window (no lanes, zero duration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `ns` of work to `name`'s lane, creating the lane on first
    /// use. Repeated charges to the same lane accumulate (they run
    /// serially on that lane's resource).
    pub fn charge(&mut self, name: &'static str, ns: Nanos) {
        match self.lanes.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += ns,
            None => self.lanes.push((name, ns)),
        }
    }

    /// Accumulated work on one lane (0 for an unknown lane).
    pub fn lane_ns(&self, name: &str) -> Nanos {
        self.lanes
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, ns)| ns)
    }

    /// The window's overlapped duration: max over lanes. Zero lanes is
    /// a zero-length window.
    pub fn critical_ns(&self) -> Nanos {
        self.lanes.iter().map(|&(_, ns)| ns).max().unwrap_or(0)
    }

    /// Total work across lanes — what a fully serial schedule would
    /// pay for the same window.
    pub fn serial_ns(&self) -> Nanos {
        self.lanes.iter().map(|&(_, ns)| ns).sum()
    }

    /// Virtual time the overlap hid: serial cost minus critical path.
    pub fn hidden_ns(&self) -> Nanos {
        self.serial_ns() - self.critical_ns()
    }

    /// Work on every lane other than `name` that spills past `name`'s
    /// lane, i.e. the exposed excess if `name` is the lane the schedule
    /// is trying to hide the others under. This generalizes the sync
    /// trainer's maintenance-spill rule (`maintain − compute`, clamped)
    /// to any number of overlapped lanes.
    pub fn spill_past(&self, name: &str) -> Nanos {
        self.critical_ns().saturating_sub(self.lane_ns(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_is_max_over_lanes() {
        let mut w = PipelineWindow::new();
        w.charge("gpu", 100);
        w.charge("maintain", 40);
        w.charge("ps", 70);
        assert_eq!(w.critical_ns(), 100);
        assert_eq!(w.serial_ns(), 210);
        assert_eq!(w.hidden_ns(), 110);
        assert_eq!(w.spill_past("gpu"), 0, "everything hides under compute");
    }

    #[test]
    fn charges_accumulate_per_lane() {
        let mut w = PipelineWindow::new();
        w.charge("ps", 30);
        w.charge("ps", 50);
        w.charge("gpu", 60);
        assert_eq!(w.lane_ns("ps"), 80);
        assert_eq!(w.critical_ns(), 80, "ps lane overtakes gpu");
        assert_eq!(w.spill_past("gpu"), 20, "ps excess spills past compute");
    }

    #[test]
    fn degenerate_single_lane_matches_serial() {
        let mut w = PipelineWindow::new();
        w.charge("gpu", 42);
        assert_eq!(w.critical_ns(), 42);
        assert_eq!(w.hidden_ns(), 0);
        assert_eq!(PipelineWindow::new().critical_ns(), 0);
    }

    #[test]
    fn matches_sync_trainer_spill_rule() {
        // The sync batch anatomy is the two-lane special case:
        // compute + spill == max(compute, maintain).
        for (compute, maintain) in [(50u64, 80u64), (80, 50), (60, 60)] {
            let mut w = PipelineWindow::new();
            w.charge("gpu", compute);
            w.charge("maintain", maintain);
            let spill = maintain.saturating_sub(compute);
            assert_eq!(w.critical_ns(), compute + spill);
        }
    }
}
