//! Lock-free log₂-bucketed latency histograms.
//!
//! The paper evaluates OpenEmbedding almost entirely through latency
//! distributions (Table I, Fig. 11): a p99 pull stall delays the whole
//! synchronous batch because every worker waits at the barrier. This
//! histogram is the shared-memory counterpart of
//! `oe_simdevice::LatencyHistogram` — same bucket geometry (8
//! sub-buckets per power of two, ≤ 12.5 % relative error), but every
//! cell is an [`AtomicU64`] so hot paths record through a shared
//! reference with no lock and no `&mut`.
//!
//! Values are nanoseconds. Both time bases work: wall-clock
//! (`Instant::elapsed().as_nanos()`) and the discrete-event simulator's
//! virtual [`Cost`](../../oe_simdevice/struct.Cost.html) deltas.

use serde::ser::{Serialize, SerializeStruct, Serializer};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (8 ⇒ ≤ 12.5 % relative error).
const SUBBUCKETS: usize = 8;
/// Powers of two covered: 1 ns … ~1.2 × 10¹⁸ ns.
const BUCKETS: usize = 60;
/// Total bucket cells.
const SLOTS: usize = BUCKETS * SUBBUCKETS;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let pow = 63 - v.leading_zeros() as usize; // floor(log2 v)
    let sub = if pow == 0 {
        0
    } else {
        // Position within the power-of-two range, in SUBBUCKETS steps
        // (u128 to avoid overflow at the top of the range).
        (((v - (1u64 << pow)) as u128 * SUBBUCKETS as u128) >> pow) as usize
    };
    (pow * SUBBUCKETS + sub).min(SLOTS - 1)
}

/// Representative (upper-edge) value of a bucket.
fn bucket_value(idx: usize) -> u64 {
    let pow = idx / SUBBUCKETS;
    let sub = idx % SUBBUCKETS;
    (1u64 << pow) + (((sub as u64 + 1) << pow) / SUBBUCKETS as u64)
}

/// A fixed-size, lock-free histogram of nanosecond values.
///
/// All methods take `&self`; recording is a handful of `Relaxed`
/// atomic RMWs. Readers take a [`snapshot`](Histogram::snapshot) and
/// query quantiles on the immutable copy. A snapshot racing with
/// writers may lag individual cells, but once writers quiesce the
/// totals are exact — no samples are ever lost.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond value. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Point-in-time copy for quantile queries and merging.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        // Derive the total from the cells so the quantile walk is
        // internally consistent even when racing writers have bumped
        // `total` before their cell store became visible.
        let total = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]; quantile queries live here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; SLOTS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values (ns).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (ns), or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded value (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` ∈ [0, 1], within bucket resolution and
    /// clamped to the exact observed `[min, max]` range.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= target {
                return bucket_value(i).clamp(self.min(), self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merge another snapshot into this one (cross-thread aggregation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The window between `base` (an earlier snapshot of the same
    /// histogram) and `self`: cellwise count difference, so quantiles
    /// over just the samples recorded since `base` — how a controller
    /// watches a *recent* p99 on a cumulative histogram. `min`/`max`
    /// are carried from the cumulative snapshot (exact window extrema
    /// are not recoverable from two snapshots), so they bound the
    /// window loosely; the bucket-resolution quantiles are exact for
    /// the window.
    pub fn delta_since(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .zip(&base.counts)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let total = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            sum: self.sum.saturating_sub(base.sum),
            min: self.min,
            max: self.max,
        }
    }

    /// `p50/p95/p99/max` summary line in milliseconds.
    pub fn summary_ms(&self) -> String {
        format!(
            "p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms (n={})",
            self.p50() as f64 / 1e6,
            self.p95() as f64 / 1e6,
            self.p99() as f64 / 1e6,
            self.max as f64 / 1e6,
            self.total
        )
    }
}

/// Serializes as a compact quantile summary, not the raw buckets —
/// train reports and figure JSON want tail columns, not 480 cells.
impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("HistogramSnapshot", 9)?;
        s.serialize_field("count", &self.count())?;
        s.serialize_field("sum_ns", &self.sum())?;
        s.serialize_field("mean_ns", &self.mean())?;
        s.serialize_field("min_ns", &self.min())?;
        s.serialize_field("p50_ns", &self.p50())?;
        s.serialize_field("p95_ns", &self.p95())?;
        s.serialize_field("p99_ns", &self.p99())?;
        s.serialize_field("p999_ns", &self.p999())?;
        s.serialize_field("max_ns", &self.max())?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50() as f64;
        let p99 = s.p99() as f64;
        assert!((p50 / 5_000.0 - 1.0).abs() < 0.15, "p50 = {p50}");
        assert!((p99 / 9_900.0 - 1.0).abs() < 0.15, "p99 = {p99}");
        assert_eq!(s.max(), 10_000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.sum(), (1 + 10_000) * 10_000 / 2);
    }

    #[test]
    fn heavy_tail_visible_in_p99_not_p50() {
        let h = Histogram::new();
        for _ in 0..990 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000); // 1 ms stalls
        }
        let s = h.snapshot();
        assert!(s.p50() < 2_000);
        assert!(s.quantile(0.995) >= 900_000, "tail: {}", s.quantile(0.995));
    }

    #[test]
    fn merge_combines() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count(), 2);
        assert_eq!(sa.max(), 1_000_000);
        assert_eq!(sa.min(), 100);
        assert_eq!(sa.sum(), 1_000_100);
    }

    #[test]
    fn delta_since_isolates_the_window() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1_000); // old regime: fast
        }
        let base = h.snapshot();
        for _ in 0..50 {
            h.record(1_000_000); // new regime: 1 ms stalls
        }
        let delta = h.snapshot().delta_since(&base);
        assert_eq!(delta.count(), 50, "only window samples");
        assert_eq!(delta.sum(), 50 * 1_000_000);
        assert!(
            delta.p50() >= 900_000,
            "window median sees the stalls: {}",
            delta.p50()
        );
        // The cumulative snapshot's median still reflects the old regime.
        assert!(h.snapshot().p50() < 2_000);
        // Identical snapshots produce an empty window.
        let s = h.snapshot();
        let empty = s.delta_since(&s);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.quantile(0.99), 0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert!(s.quantile(1.0) > 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread values over [1, 1e6].
                        h.record(1 + (t * PER_THREAD + i) * 999_999 / (THREADS * PER_THREAD));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS * PER_THREAD, "no sample lost");
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            let v = s.quantile(q);
            assert!(
                (s.min()..=s.max()).contains(&v),
                "quantile({q}) = {v} outside [{}, {}]",
                s.min(),
                s.max()
            );
        }
    }

    #[test]
    fn snapshot_while_racing_is_sane() {
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let h = Arc::clone(&h);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(v % 1_000_000 + 1);
                    v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            })
        };
        for _ in 0..200 {
            let s = h.snapshot();
            if s.count() > 0 {
                let p99 = s.p99();
                assert!((1..=1_125_000).contains(&p99), "p99 = {p99}");
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn bucket_monotonicity() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 7, 8, 9, 100, 1_000, 1 << 20, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket({v}) = {b} < {last}");
            last = b;
        }
    }
}
