//! # oe-telemetry
//!
//! The observability substrate of the parameter-server stack (S25):
//! the paper evaluates OpenEmbedding almost entirely through latency
//! and throughput distributions (§VI, Table I, Fig. 11), and a
//! production PS is tuned by watching exactly those numbers move.
//!
//! - [`hist`] — a lock-free, log₂-bucketed latency [`Histogram`]
//!   (record in ns through `&self`, query p50/p95/p99/p999/max on an
//!   immutable [`HistogramSnapshot`], mergeable across threads). The
//!   same histogram serves wall-clock `Instant` timings on real
//!   servers and virtual-time `Cost` deltas in the discrete-event
//!   simulator.
//! - [`registry`] — a [`Registry`] of named counters/gauges/histograms
//!   with cheap cloned handles for hot-path recording and a consistent
//!   [`Registry::snapshot`].
//! - [`span`] — per-[`Phase`] timers ([`PhaseTimes`]) with RAII
//!   wall-clock guards and explicit virtual-time recording.
//! - [`text`] — Prometheus-style text exposition, served over the
//!   wire by `Request::Metrics` and printed by `oectl metrics`.
//!
//! The crate depends only on `std` and `serde`, so every layer of the
//! stack (core node, net server, serving node, trainer, benches) can
//! link it without weight.

#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod span;
pub mod text;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, HistogramHandle, MetricValue, Registry, RegistrySnapshot};
pub use span::{Phase, PhaseTimes, SpanGuard};
