//! A registry of named metrics with cheap cloned handles.
//!
//! Hot paths hold a [`Counter`] / [`Gauge`] / [`HistogramHandle`]
//! (each an `Arc` around atomics) and record with a few `Relaxed`
//! RMWs — the registry's lock is touched only at registration and
//! snapshot time, never per sample. Names are stable identifiers in
//! Prometheus style (`oe_pulls_total`, `rpc_execute_latency_ns`);
//! [`Registry::snapshot`] yields a consistent, queryable copy and
//! [`Registry::render_text`] the text exposition.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::text;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not (yet) attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, CBI, …).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    v: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A cloneable handle to a registered [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    h: Arc<Histogram>,
}

impl HistogramHandle {
    /// A histogram not (yet) attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Record one nanosecond value.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.h.record(ns);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.h.count()
    }

    /// Point-in-time copy for quantile queries.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.h.snapshot()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Named metrics, get-or-registered on first use.
///
/// Registration takes a write lock; recording through the returned
/// handles is lock-free. One registry per node/server/serving instance
/// keeps exposition self-contained.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        wrap: impl FnOnce() -> (Metric, T),
        unwrap: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        // Fast path: already registered.
        if let Some(m) = self.metrics.read().expect("registry poisoned").get(name) {
            return unwrap(m)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
        }
        let mut map = self.metrics.write().expect("registry poisoned");
        // Re-check under the write lock (another thread may have won).
        if let Some(m) = map.get(name) {
            return unwrap(m)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
        }
        let (metric, handle) = wrap();
        map.insert(name.to_string(), metric);
        handle
    }

    /// Get or register a counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || {
                let c = Counter::detached();
                (Metric::Counter(c.clone()), c)
            },
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || {
                let g = Gauge::default();
                (Metric::Gauge(g.clone()), g)
            },
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.get_or_insert(
            name,
            || {
                let h = HistogramHandle::detached();
                (Metric::Histogram(h.clone()), h)
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.metrics.read().expect("registry poisoned");
        let entries = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        RegistrySnapshot { entries }
    }

    /// Prometheus-style text exposition of the current state.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// Value of one metric inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, Serialize)]
#[serde(untagged)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Serialize)]
pub struct RegistrySnapshot {
    /// Metric name → value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// Counter value, if `name` is a registered counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a registered gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.entries.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary, if `name` is a registered histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition.
    pub fn render_text(&self) -> String {
        text::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("ops_total");
        let b = reg.counter("ops_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("ops_total"), Some(4));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth");
        g.set(10);
        g.set(3);
        assert_eq!(reg.snapshot().gauge("queue_depth"), Some(3));
    }

    #[test]
    fn histogram_registers_and_snapshots() {
        let reg = Registry::new();
        let h = reg.histogram("latency_ns");
        h.record(1_000);
        h.record(2_000);
        let snap = reg.snapshot();
        let hs = snap.histogram("latency_ns").unwrap();
        assert_eq!(hs.count(), 2);
        assert_eq!(hs.max(), 2_000);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").add(2);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries.keys().cloned().collect();
        assert_eq!(names, vec!["a_total", "b_total"]);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn concurrent_registration_yields_one_metric() {
        let reg = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        reg.counter("contended_total").inc();
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(reg.snapshot().counter("contended_total"), Some(8_000));
    }
}
