//! Phase-scoped span timers.
//!
//! The training loop decomposes into the paper's phases (pull burst →
//! [maintenance ∥ compute] → push burst → checkpoint), and the server
//! adds its own (decode → execute). [`PhaseTimes`] owns one histogram
//! per phase; call sites either open an RAII [`SpanGuard`] (wall-clock
//! `Instant` time, for real servers) or call
//! [`PhaseTimes::record_ns`] with a virtual-time delta (for the
//! discrete-event simulator, where elapsed `Cost` is the clock).

use crate::registry::{HistogramHandle, Registry};
use std::time::Instant;

/// A named phase of the PS stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Embedding lookup burst.
    Pull,
    /// Deferred maintenance (cache admission, flush scheduling).
    Maintain,
    /// Entry write-back to PMem.
    Flush,
    /// Checkpoint commit (CBI advance).
    CkptCommit,
    /// Gradient application burst.
    Push,
    /// Server-side request frame decode.
    RpcDecode,
    /// Server-side request execution.
    RpcExecute,
    /// Inference-side single-key lookup.
    ServeLookup,
    /// Inference-side top-k scan.
    ServeTopk,
    /// Shard-plan construction: bucketing a request's keys by shard.
    Plan,
    /// Shard-plan duplicate-key coalescing within each shard group.
    Dedup,
    /// Shard-plan parallel lane execution (locked per-shard work).
    Execute,
    /// Shard-plan result merge: fan-out of deduped payloads to the
    /// response buffer in original key order.
    Merge,
    /// Client-side retry backoff wait (virtual time charged between
    /// RPC attempts).
    RetryBackoff,
    /// Failover promotion: checkpoint scan + index rebuild on the
    /// replica (virtual recovery time).
    FailoverRecovery,
    /// Serving-plane snapshot flip: publishing a freshly built
    /// immutable snapshot into the reader handle.
    SnapshotFlip,
    /// Per-snapshot ANN index construction (LSH signatures + buckets).
    AnnBuild,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 17] = [
        Phase::Pull,
        Phase::Maintain,
        Phase::Flush,
        Phase::CkptCommit,
        Phase::Push,
        Phase::RpcDecode,
        Phase::RpcExecute,
        Phase::ServeLookup,
        Phase::ServeTopk,
        Phase::Plan,
        Phase::Dedup,
        Phase::Execute,
        Phase::Merge,
        Phase::RetryBackoff,
        Phase::FailoverRecovery,
        Phase::SnapshotFlip,
        Phase::AnnBuild,
    ];

    /// Stable metric-name fragment.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pull => "pull",
            Phase::Maintain => "maintain",
            Phase::Flush => "flush",
            Phase::CkptCommit => "ckpt_commit",
            Phase::Push => "push",
            Phase::RpcDecode => "rpc_decode",
            Phase::RpcExecute => "rpc_execute",
            Phase::ServeLookup => "serve_lookup",
            Phase::ServeTopk => "serve_topk",
            Phase::Plan => "plan",
            Phase::Dedup => "dedup",
            Phase::Execute => "execute",
            Phase::Merge => "merge",
            Phase::RetryBackoff => "retry_backoff",
            Phase::FailoverRecovery => "failover_recovery",
            Phase::SnapshotFlip => "snapshot_flip",
            Phase::AnnBuild => "ann_build",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One latency histogram per registered phase.
///
/// Phases are opt-in per component: a PS node registers the training
/// phases, a server the RPC phases, a serving node the lookup phases —
/// so each component's exposition shows only histograms it can fill.
#[derive(Debug)]
pub struct PhaseTimes {
    hists: [Option<HistogramHandle>; 17],
}

impl PhaseTimes {
    /// Register `phases` in `registry` as
    /// `{prefix}_{phase}_latency_ns` histograms (an empty prefix
    /// registers `{phase}_latency_ns` — for phases whose names already
    /// carry their component, like `serve_lookup`).
    pub fn new(registry: &Registry, prefix: &str, phases: &[Phase]) -> Self {
        let mut hists: [Option<HistogramHandle>; 17] = Default::default();
        for &p in phases {
            let name = if prefix.is_empty() {
                format!("{}_latency_ns", p.name())
            } else {
                format!("{prefix}_{}_latency_ns", p.name())
            };
            hists[p.index()] = Some(registry.histogram(&name));
        }
        Self { hists }
    }

    fn hist(&self, phase: Phase) -> &HistogramHandle {
        self.hists[phase.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("phase `{}` not registered in this PhaseTimes", phase.name()))
    }

    /// Record a virtual-time duration for `phase` (discrete-event path).
    #[inline]
    pub fn record_ns(&self, phase: Phase, ns: u64) {
        self.hist(phase).record(ns);
    }

    /// Open a wall-clock span for `phase`; its drop records the
    /// elapsed time.
    pub fn span(&self, phase: Phase) -> SpanGuard {
        SpanGuard {
            hist: self.hist(phase).clone(),
            start: Instant::now(),
        }
    }
}

/// RAII wall-clock timer; records elapsed ns into its histogram on drop.
#[derive(Debug)]
pub struct SpanGuard {
    hist: HistogramHandle,
    start: Instant,
}

impl SpanGuard {
    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let reg = Registry::new();
        let phases = PhaseTimes::new(&reg, "test", &[Phase::Pull]);
        {
            let _s = phases.span(Phase::Pull);
            std::hint::black_box(0u64);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("test_pull_latency_ns").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn virtual_time_recording() {
        let reg = Registry::new();
        let phases = PhaseTimes::new(&reg, "oe", &[Phase::Maintain, Phase::CkptCommit]);
        phases.record_ns(Phase::Maintain, 5_000);
        phases.record_ns(Phase::Maintain, 7_000);
        phases.record_ns(Phase::CkptCommit, 1_000_000);
        let snap = reg.snapshot();
        let m = snap.histogram("oe_maintain_latency_ns").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.max(), 7_000);
        assert_eq!(
            snap.histogram("oe_ckpt_commit_latency_ns").unwrap().max(),
            1_000_000
        );
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_phase_panics() {
        let reg = Registry::new();
        let phases = PhaseTimes::new(&reg, "x", &[Phase::Pull]);
        phases.record_ns(Phase::Push, 1);
    }

    #[test]
    fn all_phases_have_distinct_names() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }
}
