//! Prometheus-style text exposition.
//!
//! Counters and gauges render as `# TYPE` + one sample line;
//! histograms render as summaries: one `{quantile="…"}` line per
//! tracked quantile plus `_sum` and `_count`. The output is what
//! `oectl metrics` prints and what the `Request::Metrics` RPC ships
//! over the wire.

use crate::registry::{MetricValue, RegistrySnapshot};
use std::fmt::Write;

const QUANTILES: [(f64, &str); 5] = [
    (0.5, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
    (0.999, "0.999"),
    (1.0, "1"),
];

/// Render a snapshot in Prometheus text format.
pub fn render(snap: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} summary");
                for (q, label) in QUANTILES {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
                }
                let _ = writeln!(out, "{name}_sum {}", h.sum());
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn renders_counters_and_gauges() {
        let reg = Registry::new();
        reg.counter("oe_pulls_total").add(42);
        reg.gauge("oe_committed_batch").set(7);
        let text = reg.render_text();
        assert!(text.contains("# TYPE oe_committed_batch gauge"));
        assert!(text.contains("oe_committed_batch 7"));
        assert!(text.contains("# TYPE oe_pulls_total counter"));
        assert!(text.contains("oe_pulls_total 42"));
    }

    #[test]
    fn renders_histogram_summary() {
        let reg = Registry::new();
        let h = reg.histogram("rpc_execute_latency_ns");
        for v in [100, 200, 300, 400_000] {
            h.record(v);
        }
        let text = reg.render_text();
        assert!(text.contains("# TYPE rpc_execute_latency_ns summary"));
        assert!(text.contains("rpc_execute_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("rpc_execute_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("rpc_execute_latency_ns{quantile=\"1\"} 400000"));
        assert!(text.contains("rpc_execute_latency_ns_sum 400600"));
        assert!(text.contains("rpc_execute_latency_ns_count 4"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(Registry::new().render_text(), "");
    }
}
