//! Cloud cost model reproducing the paper's Table V ("Price of
//! parameter servers"), Alibaba Cloud pay-as-you-go prices.

use serde::Serialize;

/// A parameter-server deployment option from Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PsDeployment {
    /// `count` large DRAM servers (ecs.r6e.13xlarge: 52 cores, 384 GB).
    DramServers {
        /// Number of machines.
        count: u32,
    },
    /// `count` PMem servers (ecs.re6p.13xlarge: 52 cores, 192 GB DRAM +
    /// 756 GB PMem).
    PmemServers {
        /// Number of machines.
        count: u32,
    },
}

/// Table V price constants ($/hour, pay-as-you-go).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CloudCostModel {
    /// ecs.r6e.13xlarge hourly price (2 machines = $6.07/h in Table V).
    pub dram_server_per_hour: f64,
    /// ecs.re6p.13xlarge hourly price.
    pub pmem_server_per_hour: f64,
}

impl CloudCostModel {
    /// The paper's prices.
    pub fn paper() -> Self {
        Self {
            dram_server_per_hour: 6.07 / 2.0,
            pmem_server_per_hour: 3.80,
        }
    }

    /// $/hour for a deployment.
    pub fn per_hour(&self, d: PsDeployment) -> f64 {
        match d {
            PsDeployment::DramServers { count } => self.dram_server_per_hour * count as f64,
            PsDeployment::PmemServers { count } => self.pmem_server_per_hour * count as f64,
        }
    }

    /// PS cost of one training epoch taking `hours`.
    pub fn per_epoch(&self, d: PsDeployment, hours: f64) -> f64 {
        self.per_hour(d) * hours
    }

    /// DRAM capacity (GB) of a deployment — for the "fits the model?"
    /// sizing argument in Table V.
    pub fn dram_gb(&self, d: PsDeployment) -> u64 {
        match d {
            PsDeployment::DramServers { count } => 384 * count as u64,
            PsDeployment::PmemServers { count } => 192 * count as u64,
        }
    }

    /// PMem capacity (GB).
    pub fn pmem_gb(&self, d: PsDeployment) -> u64 {
        match d {
            PsDeployment::DramServers { .. } => 0,
            PsDeployment::PmemServers { count } => 756 * count as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_prices() {
        let m = CloudCostModel::paper();
        // Table V: 2 DRAM servers $6.07/h, 1 PMem server $3.80/h.
        assert!((m.per_hour(PsDeployment::DramServers { count: 2 }) - 6.07).abs() < 1e-9);
        assert!((m.per_hour(PsDeployment::PmemServers { count: 1 }) - 3.80).abs() < 1e-9);
    }

    #[test]
    fn table5_epoch_costs() {
        let m = CloudCostModel::paper();
        // Table V epoch rows: DRAM 5.75 h → $34.9; PMem-OE 5.33 h →
        // $20.3; Ori-Cache 7.01 h → $26.6.
        let dram = m.per_epoch(PsDeployment::DramServers { count: 2 }, 5.75);
        let oe = m.per_epoch(PsDeployment::PmemServers { count: 1 }, 5.33);
        let ori = m.per_epoch(PsDeployment::PmemServers { count: 1 }, 7.01);
        assert!((dram - 34.9).abs() < 0.05, "dram = {dram}");
        assert!((oe - 20.3).abs() < 0.05, "oe = {oe}");
        assert!((ori - 26.6).abs() < 0.05, "ori = {ori}");
        // Headline claim: 42% storage-cost saving vs pure DRAM.
        let saving = 1.0 - oe / dram;
        assert!((saving - 0.42).abs() < 0.01, "saving = {saving}");
    }

    #[test]
    fn capacity_sizing() {
        let m = CloudCostModel::paper();
        // A 500 GB model needs 2 DRAM servers (384 GB each) but only one
        // PMem server (756 GB PMem).
        assert!(m.dram_gb(PsDeployment::DramServers { count: 1 }) < 500);
        assert!(m.dram_gb(PsDeployment::DramServers { count: 2 }) >= 500);
        assert!(m.pmem_gb(PsDeployment::PmemServers { count: 1 }) >= 500);
    }
}
