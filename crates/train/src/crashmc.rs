//! Exhaustive crash-point enumeration for the persistence protocol
//! ("crashmc" — crash model checking).
//!
//! The paper's durability claims (§V-B/§V-C) are quantified over *every*
//! instant a power cut can strike, but ordinary crash tests sample a
//! handful of instants. This harness makes the claim checkable by
//! exhaustion: [`oe_simdevice::Media`] numbers every persistence event
//! (each CLWB-equivalent `flush` and each SFENCE-equivalent `fence`),
//! and a [`CrashPlan`] captures the torn-write crash image immediately
//! *before* event `k` applies. Because the training schedule here is
//! fully deterministic (fixed key sets, gradient rule, and checkpoint
//! cadence; single-lane execution; no iteration-order dependence on the
//! media path), the event stream is identical on every replay — so the
//! sweep can enumerate `k = 0 ..= E` and several torn-write seeds per
//! index and know it has covered every distinct durable state the
//! protocol can leave behind (stores between two events only become
//! durable *at* an event, so event boundaries are exactly the
//! distinguishable crash points).
//!
//! At every crash point the harness recovers via `core::recovery` and
//! checks five invariants:
//!
//! 1. **Committed id**: the recovered checkpoint id is one the run
//!    actually requested (or 0) and lies between the ids committed at
//!    the enclosing step boundaries.
//! 2. **Integrity**: no live slot fails its checksum (`corrupt == 0`) —
//!    the two-fence slot-write protocol never exposes a torn payload.
//! 3. **Accounting**: the recovered free list and live set partition
//!    `0..high_water` exactly — no leaked slots, no double-frees, no
//!    phantom ids.
//! 4. **Idempotence**: crashing again right after recovery and
//!    re-recovering yields the same committed id and live set.
//! 5. **Lossless rewind**: resuming the recovered node through the
//!    remaining batches reproduces the fault-free final weights
//!    *bit-identically*.
//!
//! [`recovery_crash_sweep`] closes the loop on invariant 4 by crashing
//! at every persistence event *of the recovery scan itself* (the
//! `free_no_list` stream) and re-recovering.

use oe_core::config::NodeConfig;
use oe_core::engine::PsEngine;
use oe_core::optimizer::OptimizerKind;
use oe_core::recovery::{recover_node, RecoveryReport};
use oe_core::{BatchId, Key, PsNode};
use oe_simdevice::{Cost, CrashPlan, Media, MediaConfig};
use serde::Serialize;
use std::sync::Arc;

/// Configuration of one enumeration sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CrashMcConfig {
    /// Base keys pulled every batch (`0..keys`).
    pub keys: u64,
    /// Embedding dimension.
    pub dim: usize,
    /// Batches in the reference run.
    pub batches: u64,
    /// Request a checkpoint after every `ckpt_every`-th batch.
    pub ckpt_every: u64,
    /// Optimizer under test (its state rides in the slot payload, so
    /// every optimizer exercises a different payload layout).
    pub optimizer: OptimizerKind,
    /// Torn-write seeds evaluated per event index (flushed-but-unfenced
    /// lines land with p = ½ per seed).
    pub seeds_per_index: u64,
    /// Check every `stride`-th event index (1 = exhaustive).
    pub stride: u64,
    /// DRAM cache budget in entries; keep it below the touched key
    /// count so eviction/flush traffic (the interesting persistence
    /// activity) happens constantly.
    pub cache_entries: usize,
}

impl CrashMcConfig {
    /// The exhaustive default used by the `crashmc` integration test:
    /// every event index, three checkpoint commits, growth keys so the
    /// key population changes between checkpoints.
    pub fn exhaustive(optimizer: OptimizerKind) -> Self {
        Self {
            keys: 4,
            dim: 4,
            batches: 7,
            ckpt_every: 2,
            optimizer,
            seeds_per_index: 2,
            stride: 1,
            cache_entries: 3,
        }
    }

    /// The node configuration the harness drives. Single-lane and
    /// single-shard so the persistence-event stream is deterministic.
    pub fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::small(self.dim);
        cfg.optimizer = self.optimizer;
        cfg.cache_bytes = self.cache_entries.max(1) * cfg.bytes_per_cached_entry();
        cfg.shards = 1;
        cfg.parallelism = 1;
        cfg.pmem_capacity = 1 << 22;
        cfg
    }

    /// Keys pulled at `batch`: the base working set plus one growth key
    /// per batch, so checkpoints cover a changing population.
    pub fn step_keys(&self, batch: BatchId) -> Vec<Key> {
        let mut keys: Vec<Key> = (0..self.keys).collect();
        keys.push(self.keys + batch);
        keys
    }

    /// Deterministic gradient for (`key`, `batch`, dim `d`): the replay
    /// after recovery must regenerate exactly these values.
    fn grad(&self, key: Key, batch: BatchId, d: usize) -> f32 {
        ((key.wrapping_mul(31) + batch.wrapping_mul(7) + d as u64) % 13) as f32 * 0.01 + 0.005
    }

    /// Every key the reference run ever touches, in a fixed order.
    pub fn all_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = (0..self.keys).collect();
        keys.extend((1..=self.batches).map(|b| self.keys + b));
        keys
    }
}

/// One training step of the deterministic schedule.
fn step(cfg: &CrashMcConfig, node: &PsNode, batch: BatchId) {
    let keys = cfg.step_keys(batch);
    let mut out = Vec::new();
    let mut cost = Cost::new();
    node.pull(&keys, batch, &mut out, &mut cost);
    node.end_pull_phase(batch);
    let grads: Vec<f32> = keys
        .iter()
        .flat_map(|&k| (0..cfg.dim).map(move |d| (k, d)))
        .map(|(k, d)| cfg.grad(k, batch, d))
        .collect();
    node.push(&keys, &grads, batch, &mut cost);
    if batch.is_multiple_of(cfg.ckpt_every) {
        node.request_checkpoint(batch);
    }
}

/// State observed at one step boundary of the reference run: the event
/// counter brackets every crash index `k` between two boundaries whose
/// committed ids bound the legal recovery outcome.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StepRecord {
    /// Completed batches (0 = right after node creation).
    pub batch: BatchId,
    /// Persistence events executed so far.
    pub events: u64,
    /// Committed checkpoint id at this boundary.
    pub committed: BatchId,
}

/// One full run of the deterministic schedule.
struct RunOut {
    media: Arc<Media>,
    node: PsNode,
    records: Vec<StepRecord>,
}

fn run(cfg: &CrashMcConfig, plan: Option<CrashPlan>) -> RunOut {
    let media = Arc::new(Media::new(MediaConfig::pmem(
        cfg.node_config().pmem_capacity,
    )));
    if let Some(p) = plan {
        media.arm_crash_plan(p);
    }
    let node = PsNode::on_media(cfg.node_config(), Arc::clone(&media));
    let mut records = vec![StepRecord {
        batch: 0,
        events: media.persistence_events(),
        committed: node.committed_checkpoint(),
    }];
    for b in 1..=cfg.batches {
        step(cfg, &node, b);
        records.push(StepRecord {
            batch: b,
            events: media.persistence_events(),
            committed: node.committed_checkpoint(),
        });
    }
    RunOut {
        media,
        node,
        records,
    }
}

/// The fault-free reference: step-boundary records plus the final
/// weights the rewind invariant compares against (as exact bit
/// patterns — "close enough" is not a durability guarantee).
pub struct Reference {
    /// Step-boundary observations.
    pub records: Vec<StepRecord>,
    /// Total persistence events in the run.
    pub total_events: u64,
    /// Checkpoint ids the schedule requested.
    pub requested: Vec<BatchId>,
    /// (key, weight bits) at the end of the fault-free run.
    pub final_weights: Vec<(Key, Vec<u32>)>,
}

/// Execute the fault-free reference run.
pub fn reference(cfg: &CrashMcConfig) -> Reference {
    let out = run(cfg, None);
    let final_weights = cfg
        .all_keys()
        .iter()
        .map(|&k| {
            let w = out.node.read_weights(k).expect("reference key exists");
            (k, w.iter().map(|v| v.to_bits()).collect())
        })
        .collect();
    Reference {
        total_events: out.media.persistence_events(),
        requested: (1..=cfg.batches)
            .filter(|b| b.is_multiple_of(cfg.ckpt_every))
            .collect(),
        records: out.records,
        final_weights,
    }
}

/// Verdict for one (event index, seed) crash point.
#[derive(Debug, Serialize)]
pub struct CrashPointReport {
    /// Persistence-event index the crash struck at.
    pub event: u64,
    /// Torn-write resolution seed.
    pub seed: u64,
    /// Whether the media held a recoverable pool (false is legal only
    /// before the pool root's first fence).
    pub recovered: bool,
    /// Invariant checks evaluated.
    pub checks: u64,
    /// Invariant violations (empty = durable at this point).
    pub violations: Vec<String>,
}

fn live_set(report: &RecoveryReport) -> Vec<(Key, BatchId)> {
    let mut v: Vec<(Key, BatchId)> = report
        .scan
        .live
        .iter()
        .map(|r| (r.key, r.version))
        .collect();
    v.sort_unstable();
    v
}

/// Crash at persistence event `at_event` (resolving torn lines with
/// `seed`), recover, and evaluate all five invariants. `at_event ==
/// total_events` means a crash at quiescence after the last batch.
pub fn check_crash_point(
    cfg: &CrashMcConfig,
    reference: &Reference,
    at_event: u64,
    seed: u64,
) -> CrashPointReport {
    let mut rep = CrashPointReport {
        event: at_event,
        seed,
        recovered: false,
        checks: 0,
        violations: Vec::new(),
    };
    let fail = |rep: &mut CrashPointReport, msg: String| {
        rep.violations
            .push(format!("event {at_event} seed {seed}: {msg}"));
    };

    let image = if at_event >= reference.total_events {
        run(cfg, None).media.crash(seed)
    } else {
        let out = run(cfg, Some(CrashPlan { at_event, seed }));
        // The sweep's coverage claim rests on replay determinism.
        rep.checks += 1;
        if out.media.persistence_events() != reference.total_events {
            fail(
                &mut rep,
                format!(
                    "event stream nondeterministic: {} vs reference {}",
                    out.media.persistence_events(),
                    reference.total_events
                ),
            );
        }
        out.media
            .take_crash_capture()
            .expect("event index within the run")
    };

    let media = Arc::new(Media::from_crash(image));
    let mut cost = Cost::new();
    let recovery = recover_node(Arc::clone(&media), cfg.node_config(), &mut cost);
    let Some((node, report)) = recovery else {
        // Legal only while the pool root has never been fenced (events
        // 0 and 1 of a fresh run are the root flush + fence).
        rep.checks += 1;
        if at_event >= 2 {
            fail(&mut rep, "unrecoverable after the pool root fence".into());
        }
        return rep;
    };
    rep.recovered = true;

    // Invariant 1: the committed id is bounded by the enclosing step
    // boundaries and was actually requested.
    let c = report.resume_batch;
    let (lo, hi) = committed_bounds(reference, at_event);
    rep.checks += 1;
    if c < lo || c > hi {
        fail(&mut rep, format!("committed id {c} outside [{lo}, {hi}]"));
    }
    rep.checks += 1;
    if c != 0 && !reference.requested.contains(&c) {
        fail(&mut rep, format!("committed id {c} was never requested"));
    }

    // Invariant 2: no live slot with a bad checksum.
    rep.checks += 1;
    if report.scan.corrupt != 0 {
        fail(
            &mut rep,
            format!("{} corrupt slots survived as Valid", report.scan.corrupt),
        );
    }

    // Invariant 3: free ∪ live partitions 0..high_water exactly.
    let pool = node.pool();
    let hw = pool.high_water();
    let free = pool.free_list_ids();
    rep.checks += 1;
    if let Some(bad) = free.iter().find(|s| s.0 >= hw) {
        fail(&mut rep, format!("free slot {bad:?} at/beyond hw {hw}"));
    }
    let mut dedup: Vec<_> = free.clone();
    dedup.sort_unstable();
    dedup.dedup();
    rep.checks += 1;
    if dedup.len() != free.len() {
        fail(&mut rep, "duplicate ids in recovered free list".into());
    }
    rep.checks += 1;
    if free.len() as u64 + report.scan.live.len() as u64 != hw {
        fail(
            &mut rep,
            format!(
                "slot leak: {} free + {} live != {hw} high-water",
                free.len(),
                report.scan.live.len()
            ),
        );
    }
    rep.checks += 1;
    if report.scan.live.iter().any(|r| free.contains(&r.id)) {
        fail(&mut rep, "live slot also on the free list".into());
    }

    // Invariant 4: recovery is idempotent — crash immediately after it
    // and recover again (every recovery write is itself fenced).
    let recrash = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let media2 = Arc::new(Media::from_crash(media.crash(recrash)));
    let mut cost2 = Cost::new();
    rep.checks += 1;
    match recover_node(media2, cfg.node_config(), &mut cost2) {
        None => fail(&mut rep, "re-recovery after recovery failed".into()),
        Some((_, report2)) => {
            if report2.resume_batch != c {
                fail(
                    &mut rep,
                    format!(
                        "re-recovery committed {} != first recovery {c}",
                        report2.resume_batch
                    ),
                );
            }
            rep.checks += 1;
            if live_set(&report2) != live_set(&report) {
                fail(&mut rep, "re-recovery live set diverged".into());
            }
        }
    }

    // Invariant 5: resume the surviving timeline to the end; the final
    // weights must be bit-identical to the fault-free reference.
    for b in (c + 1)..=cfg.batches {
        step(cfg, &node, b);
    }
    rep.checks += 1;
    for (key, expect) in &reference.final_weights {
        let Some(w) = node.read_weights(*key) else {
            fail(&mut rep, format!("key {key} missing after resume"));
            continue;
        };
        let bits: Vec<u32> = w.iter().map(|v| v.to_bits()).collect();
        if &bits != expect {
            fail(
                &mut rep,
                format!("key {key} weights diverged after resume (not bit-identical)"),
            );
        }
    }
    rep
}

/// Aggregate outcome of a sweep (also the `BENCH_crashmc.json` shape).
#[derive(Debug, Serialize)]
pub struct SweepReport {
    /// Persistence events in the reference run (coverage denominator).
    pub total_events: u64,
    /// Event indices evaluated (numerator; `total_events + 1` when
    /// `stride == 1`, including the quiescent end-state crash).
    pub indices_checked: u64,
    /// Torn-write seeds evaluated per index.
    pub seeds_per_index: u64,
    /// Invariant checks evaluated across all crash points.
    pub invariant_checks: u64,
    /// Crash points that left unrecoverable media legally (before the
    /// pool root fence).
    pub unrecoverable_fresh: u64,
    /// All invariant violations found (empty = the protocol held
    /// everywhere).
    pub violations: Vec<String>,
}

/// Sweep crash points `0, stride, 2·stride, ..` (plus the quiescent
/// end state) with `seeds_per_index` torn-write resolutions each.
pub fn sweep(cfg: &CrashMcConfig) -> SweepReport {
    let reference = reference(cfg);
    let mut out = SweepReport {
        total_events: reference.total_events,
        indices_checked: 0,
        seeds_per_index: cfg.seeds_per_index,
        invariant_checks: 0,
        unrecoverable_fresh: 0,
        violations: Vec::new(),
    };
    let stride = cfg.stride.max(1);
    let mut k = 0;
    while k <= reference.total_events {
        out.indices_checked += 1;
        for s in 0..cfg.seeds_per_index.max(1) {
            let seed = k.wrapping_mul(1_000_003).wrapping_add(s);
            let rep = check_crash_point(cfg, &reference, k, seed);
            out.invariant_checks += rep.checks;
            if !rep.recovered && rep.violations.is_empty() {
                out.unrecoverable_fresh += 1;
            }
            out.violations.extend(rep.violations);
        }
        k += stride;
    }
    out
}

/// Capture the crash image at `at_event` of the reference schedule —
/// e.g. to hand a `net::failover` standby a mid-run crash state and
/// drive promotion from an enumerated crash point.
pub fn capture_image(cfg: &CrashMcConfig, at_event: u64, seed: u64) -> oe_simdevice::CrashImage {
    let out = run(cfg, Some(CrashPlan { at_event, seed }));
    out.media
        .take_crash_capture()
        .expect("event index within the run")
}

/// Committed-checkpoint bounds `[lo, hi]` a recovery from a crash at
/// `at_event` may legally report, from the reference step boundaries.
pub fn committed_bounds(reference: &Reference, at_event: u64) -> (BatchId, BatchId) {
    let lo = reference
        .records
        .iter()
        .filter(|r| r.events <= at_event)
        .map(|r| r.committed)
        .max()
        .unwrap_or(0);
    let hi = reference
        .records
        .iter()
        .find(|r| r.events >= at_event)
        .map(|r| r.committed)
        .unwrap_or_else(|| reference.records.last().unwrap().committed);
    (lo, hi)
}

/// Outcome of crashing *inside* the recovery scan itself.
#[derive(Debug, Serialize)]
pub struct RecoverySweepReport {
    /// Persistence events an uninterrupted recovery executes.
    pub recovery_events: u64,
    /// Crash points inside recovery evaluated (all of them).
    pub indices_checked: u64,
    /// Invariant checks evaluated.
    pub invariant_checks: u64,
    /// Violations found.
    pub violations: Vec<String>,
}

/// Crash the reference run at `at_event`, then crash the *recovery* of
/// that image at every persistence event recovery itself issues
/// (`free_no_list`'s durable frees), re-recover, and require the same
/// committed id and live set as an uninterrupted recovery — crash
/// during recovery must never lose or duplicate state.
pub fn recovery_crash_sweep(cfg: &CrashMcConfig, at_event: u64, seed: u64) -> RecoverySweepReport {
    let image = {
        let out = run(cfg, Some(CrashPlan { at_event, seed }));
        out.media
            .take_crash_capture()
            .expect("event index within the run")
    };

    // Uninterrupted recovery baseline (also counts recovery's events).
    let base_media = Arc::new(Media::from_crash(image.clone()));
    let mut cost = Cost::new();
    let base = recover_node(Arc::clone(&base_media), cfg.node_config(), &mut cost);
    let mut out = RecoverySweepReport {
        recovery_events: base_media.persistence_events(),
        indices_checked: 0,
        invariant_checks: 0,
        violations: Vec::new(),
    };
    let Some((_, base_report)) = base else {
        // Nothing recoverable at this crash point: nothing to sweep.
        return out;
    };
    let base_live = live_set(&base_report);

    for j in 0..out.recovery_events {
        out.indices_checked += 1;
        let jseed = seed.wrapping_mul(31).wrapping_add(j);
        let media = Arc::new(Media::from_crash(image.clone()));
        media.arm_crash_plan(CrashPlan {
            at_event: j,
            seed: jseed,
        });
        let mut c1 = Cost::new();
        // First recovery runs to completion (the capture is taken on the
        // fly); the interrupted-at-j image is what a second process sees.
        let _ = recover_node(Arc::clone(&media), cfg.node_config(), &mut c1);
        let crashed = media
            .take_crash_capture()
            .expect("recovery event index in range");
        let media2 = Arc::new(Media::from_crash(crashed));
        let mut c2 = Cost::new();
        out.invariant_checks += 1;
        match recover_node(media2, cfg.node_config(), &mut c2) {
            None => out.violations.push(format!(
                "recovery event {j}: interrupted recovery left unrecoverable media"
            )),
            Some((node2, report2)) => {
                if report2.resume_batch != base_report.resume_batch {
                    out.violations.push(format!(
                        "recovery event {j}: committed {} != baseline {}",
                        report2.resume_batch, base_report.resume_batch
                    ));
                }
                out.invariant_checks += 1;
                if live_set(&report2) != base_live {
                    out.violations
                        .push(format!("recovery event {j}: live set diverged"));
                }
                out.invariant_checks += 1;
                if report2.scan.corrupt != 0 {
                    out.violations.push(format!(
                        "recovery event {j}: {} corrupt slots",
                        report2.scan.corrupt
                    ));
                }
                out.invariant_checks += 1;
                let hw = node2.pool().high_water();
                let free = node2.pool().free_list_ids();
                if free.len() as u64 + report2.scan.live.len() as u64 != hw {
                    out.violations
                        .push(format!("recovery event {j}: slot accounting leak"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sgd_cfg() -> CrashMcConfig {
        CrashMcConfig::exhaustive(OptimizerKind::Sgd { lr: 0.5 })
    }

    #[test]
    fn reference_run_is_deterministic() {
        let cfg = sgd_cfg();
        let a = reference(&cfg);
        let b = reference(&cfg);
        assert_eq!(a.total_events, b.total_events);
        assert!(a.total_events > 50, "schedule generates real traffic");
        assert_eq!(a.final_weights, b.final_weights, "bit-identical replays");
        assert_eq!(a.requested, vec![2, 4, 6]);
        // Three commits land in the reference (requests at 2, 4, 6
        // commit during the following batch's maintenance).
        assert_eq!(a.records.last().unwrap().committed, 6);
        // Boundary event counters never decrease (a batch with no
        // eviction or commit traffic legally issues zero events), and
        // the run as a whole generates traffic past creation.
        for w in a.records.windows(2) {
            assert!(w[0].events <= w[1].events);
        }
        let first = a.records.first().unwrap().events;
        let last = a.records.last().unwrap().events;
        assert!(last > first);
    }

    #[test]
    fn spot_crash_points_hold_all_invariants() {
        // The full sweep lives in tests/crashmc.rs; here a spot check at
        // characteristic indices (fresh pool, mid-run, quiescence).
        let cfg = sgd_cfg();
        let r = reference(&cfg);
        for k in [0, 1, 2, r.total_events / 2, r.total_events] {
            let rep = check_crash_point(&cfg, &r, k, 7);
            assert!(rep.violations.is_empty(), "{:?}", rep.violations);
            assert!(rep.checks > 0);
        }
    }

    #[test]
    fn sampled_sweep_is_clean_and_counts_coverage() {
        let mut cfg = sgd_cfg();
        cfg.stride = 29;
        cfg.seeds_per_index = 1;
        let rep = sweep(&cfg);
        assert!(rep.violations.is_empty(), "{:#?}", rep.violations);
        assert_eq!(
            rep.indices_checked,
            rep.total_events / 29 + 1,
            "stride covers the range"
        );
        assert!(rep.invariant_checks > rep.indices_checked * 5);
    }

    #[test]
    fn crash_during_recovery_recovers_again() {
        let cfg = sgd_cfg();
        let r = reference(&cfg);
        // Crash mid-run where uncommitted future slots exist, so the
        // recovery scan has durable frees to issue (and be crashed in).
        let rep = recovery_crash_sweep(&cfg, r.total_events - 3, 11);
        assert!(
            rep.recovery_events > 0,
            "recovery at this index issues durable frees"
        );
        assert_eq!(rep.indices_checked, rep.recovery_events);
        assert!(rep.violations.is_empty(), "{:#?}", rep.violations);
    }
}
