//! Failure injection & recovery timing (paper §VI-E, Fig. 14).
//!
//! Crashes the PMem media at an arbitrary point, recovers a fresh node
//! from the surviving image, and reports the virtual recovery time
//! composed from the scan/rebuild costs.

use oe_core::config::NodeConfig;
use oe_core::recovery::{recover_node, RecoveryReport};
use oe_core::{BatchId, PsNode};
use oe_simdevice::{ContentionModel, Cost, Media, Nanos};
use serde::Serialize;
use std::sync::Arc;

/// Outcome of a crash + recovery cycle.
#[derive(Debug, Serialize)]
pub struct FailureOutcome {
    /// Batch id training resumes after.
    pub resume_batch: BatchId,
    /// Entries recovered.
    pub recovered_keys: usize,
    /// Uncommitted (post-checkpoint) slots discarded.
    pub discarded_future: u64,
    /// Virtual recovery time.
    pub recovery_ns: Nanos,
}

/// Crash the node's PMem at this instant (seeded torn writes) and
/// recover a fresh node. `recovery_threads` parallelizes the scan/
/// rebuild (the paper notes recovery can be parallelized by
/// partitioning, §VI-E).
pub fn crash_and_recover(
    node: &PsNode,
    cfg: NodeConfig,
    seed: u64,
    recovery_threads: u32,
) -> (PsNode, FailureOutcome) {
    let media = Arc::new(Media::from_crash(node.pool().media().crash(seed)));
    let mut cost = Cost::new();
    let (recovered, report) =
        recover_node(media, cfg, &mut cost).expect("initialized pool is always recoverable");
    let outcome = outcome_from(&report, &cost, recovery_threads);
    (recovered, outcome)
}

fn outcome_from(report: &RecoveryReport, cost: &Cost, threads: u32) -> FailureOutcome {
    let model = ContentionModel::new(threads.max(1), 1);
    FailureOutcome {
        resume_batch: report.resume_batch,
        recovered_keys: report.scan.live.len(),
        discarded_future: report.scan.discarded_future,
        recovery_ns: model.burst_ns(cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::engine::PsEngine;
    use oe_core::OptimizerKind;
    use oe_simdevice::Cost;

    fn cfg() -> NodeConfig {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 0.5 };
        c
    }

    fn step(n: &PsNode, keys: &[u64], b: u64) {
        let mut out = Vec::new();
        let mut cost = Cost::new();
        n.pull(keys, b, &mut out, &mut cost);
        n.end_pull_phase(b);
        n.push(keys, &vec![0.1; keys.len() * 4], b, &mut cost);
    }

    #[test]
    fn outcome_reports_checkpoint_state() {
        let n = PsNode::new(cfg());
        let keys: Vec<u64> = (0..30).collect();
        step(&n, &keys, 1);
        n.request_checkpoint(1);
        step(&n, &keys, 2); // commits 1
        step(&n, &keys, 3); // uncommitted progress
        let (recovered, out) = crash_and_recover(&n, cfg(), 9, 1);
        assert_eq!(out.resume_batch, 1);
        assert_eq!(out.recovered_keys, 30);
        assert!(out.recovery_ns > 0);
        assert_eq!(recovered.committed_checkpoint(), 1);
    }

    #[test]
    fn parallel_recovery_is_faster() {
        let n = PsNode::new(cfg());
        let keys: Vec<u64> = (0..500).collect();
        step(&n, &keys, 1);
        n.request_checkpoint(1);
        step(&n, &keys, 2);
        let (_, serial) = crash_and_recover(&n, cfg(), 4, 1);
        let (_, parallel) = crash_and_recover(&n, cfg(), 4, 8);
        assert!(
            parallel.recovery_ns < serial.recovery_ns,
            "{} vs {}",
            parallel.recovery_ns,
            serial.recovery_ns
        );
    }
}
