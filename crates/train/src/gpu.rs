//! GPU compute cost model.
//!
//! The dense part of a DLRM (MLP + interactions) runs on the GPU; its
//! per-batch time scales with the *per-worker* share of the global batch
//! (data parallelism), which is why adding GPUs shrinks compute time
//! while the PS burst time stays roughly constant — the effect that
//! makes the PS the bottleneck at 16 GPUs in Figs. 3/6/7.
//!
//! Calibration: the paper's Fig. 7 shows DRAM-PS total time scaling
//! 1.0 → 0.60 → 0.35 for 4 → 8 → 16 GPUs, which implies compute ≈ 16×
//! the PS burst time at 4 GPUs. [`GpuModel::paper_default`] encodes
//! that ratio against the simulator's default workload scale.

use oe_simdevice::Nanos;
use serde::Serialize;

/// Per-worker GPU compute time model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GpuModel {
    /// Fixed per-batch kernel-launch / synchronization overhead (ns).
    pub batch_overhead_ns: u64,
    /// Compute time per training input per embedding dimension (ns):
    /// covers the MLP forward+backward proportional to concat width.
    pub ns_per_input_dim: f64,
    /// Allreduce time for the dense parameters per batch (ns) — paid
    /// once per batch regardless of worker count (ring allreduce is
    /// bandwidth-bound on the slowest link).
    pub allreduce_ns: u64,
}

impl GpuModel {
    /// Calibrated default (V100-class, DeepFM on dim-64 embeddings).
    pub fn paper_default() -> Self {
        Self {
            batch_overhead_ns: 200_000, // 0.2 ms launch + sync
            ns_per_input_dim: 700.0,    // ~46 ms for 1024 inputs × dim 64
            allreduce_ns: 1_200_000,    // dense part is small (<1%)
        }
    }

    /// A faster GPU (halves per-input time) — for sensitivity studies.
    pub fn fast() -> Self {
        let mut m = Self::paper_default();
        m.ns_per_input_dim /= 2.0;
        m
    }

    /// Compute time for one worker processing `inputs` examples with
    /// `fields` sparse features of dimension `dim`.
    pub fn compute_ns(&self, inputs: usize, fields: usize, dim: usize) -> Nanos {
        self.batch_overhead_ns
            + (inputs as f64 * fields as f64 * dim as f64 * self.ns_per_input_dim / 26.0) as u64
            + self.allreduce_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_with_inputs_and_dim() {
        let g = GpuModel::paper_default();
        let base = g.compute_ns(1024, 26, 64);
        assert!(g.compute_ns(2048, 26, 64) > base);
        assert!(g.compute_ns(1024, 26, 128) > base);
        assert!(g.compute_ns(512, 26, 64) < base);
    }

    #[test]
    fn data_parallel_speedup() {
        let g = GpuModel::paper_default();
        // Same global batch split over more workers → less per-worker
        // compute (modulo fixed overhead).
        let four = g.compute_ns(4096 / 4, 26, 64);
        let sixteen = g.compute_ns(4096 / 16, 26, 64);
        assert!(four > 2 * sixteen);
    }

    #[test]
    fn default_magnitude_sane() {
        // 1024 inputs at dim 64 ≈ tens of ms: the regime where the PS
        // burst (a few ms) is hidden at low GPU counts.
        let g = GpuModel::paper_default();
        let t = g.compute_ns(1024, 26, 64);
        assert!((10_000_000..200_000_000).contains(&t), "t = {t}");
    }
}
