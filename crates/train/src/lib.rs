//! # oe-train
//!
//! The synchronous DLRM training simulator.
//!
//! Two layers, matching the reproduction strategy in `DESIGN.md`:
//!
//! - **Functional**: every batch really pulls weights from the engine,
//!   computes gradients (either a synthetic rule or a real pure-Rust
//!   DeepFM with full backprop — [`model::DeepFm`]), and pushes them
//!   back; checkpoints, crashes, and recovery operate on real state.
//! - **Performance**: storage operations charge virtual time
//!   ([`oe_simdevice::Cost`]); the driver composes the charges per phase
//!   with calibrated GPU ([`gpu::GpuModel`]) and network
//!   ([`network::NetModel`]) models and a burst-contention model,
//!   reproducing the paper's batch anatomy:
//!
//! ```text
//! ── pull burst ──┬── GPU compute ────────────┬── push burst ── (ckpt?)
//!                 └── cache maintenance ‖ ────┘        (pipelined: hidden)
//! ```
//!
//! The spill of maintenance past compute, the synchronous checkpoint
//! pause, and PMem bandwidth interference are exactly the effects the
//! paper's Figs. 6/7/9/12/13 measure.

pub mod cost;
pub mod crashmc;
pub mod failure;
pub mod gpu;
pub mod model;
pub mod network;
pub mod phases;
pub mod pipeline;
pub mod report;
pub mod trainer;

pub use cost::{CloudCostModel, PsDeployment};
pub use crashmc::{CrashMcConfig, RecoverySweepReport, SweepReport};
pub use failure::FailureOutcome;
pub use gpu::GpuModel;
pub use network::NetModel;
pub use phases::PhaseBreakdown;
pub use pipeline::{CoherenceSource, PipelineConfig, PipelineReport, PipelinedTrainer};
pub use report::TrainReport;
pub use trainer::{SyncTrainer, TrainMode, TrainerConfig};
