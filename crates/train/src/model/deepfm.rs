//! DeepFM: factorization-machine second-order interactions + a deep MLP
//! over the concatenated field embeddings (Guo et al. 2017, the model
//! the paper trains in its evaluation).
//!
//! The sparse embeddings live on the parameter server; this struct holds
//! only the dense part and computes, per example, the loss and the
//! gradient *with respect to each field's embedding vector*, which the
//! trainer aggregates per key and pushes back to the PS.

use super::mlp::Mlp;
use super::{bce_loss, sigmoid};
use serde::Serialize;

/// DeepFM hyper-parameters.
#[derive(Debug, Clone, Serialize)]
pub struct DeepFmConfig {
    /// Embedding dimension (must match the PS).
    pub dim: usize,
    /// Sparse fields per example.
    pub fields: usize,
    /// Extra dense features appended to the MLP input (13 for Criteo).
    pub dense_features: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Dense-part SGD learning rate.
    pub dense_lr: f32,
    /// Init seed.
    pub seed: u64,
}

impl DeepFmConfig {
    /// Small default for tests.
    pub fn small(dim: usize, fields: usize) -> Self {
        Self {
            dim,
            fields,
            dense_features: 0,
            hidden: vec![32, 16],
            dense_lr: 0.01,
            seed: 99,
        }
    }
}

/// The dense part of a DeepFM plus the FM interaction math.
pub struct DeepFm {
    cfg: DeepFmConfig,
    mlp: Mlp,
    /// Global bias.
    bias: f32,
    bias_grad: f32,
    sum_d: Vec<f32>,
}

impl DeepFm {
    /// Build from config.
    pub fn new(cfg: DeepFmConfig) -> Self {
        let input = cfg.fields * cfg.dim + cfg.dense_features;
        let mut dims = vec![input];
        dims.extend(&cfg.hidden);
        dims.push(1);
        let mlp = Mlp::new(&dims, cfg.seed);
        Self {
            bias: 0.0,
            bias_grad: 0.0,
            sum_d: vec![0.0; cfg.dim],
            mlp,
            cfg,
        }
    }

    /// Config in use.
    pub fn config(&self) -> &DeepFmConfig {
        &self.cfg
    }

    /// Dense parameter bytes (for the dense-checkpoint cost model).
    pub fn dense_param_bytes(&self) -> usize {
        self.mlp.param_bytes() + 4
    }

    /// FM second-order term via the sum-square trick:
    /// `0.5 · Σ_d [ (Σ_f v_fd)² − Σ_f v_fd² ]`.
    fn fm_forward(&mut self, emb: &[f32]) -> f32 {
        let (dim, fields) = (self.cfg.dim, self.cfg.fields);
        self.sum_d.iter_mut().for_each(|s| *s = 0.0);
        let mut sq = 0.0f32;
        for f in 0..fields {
            for d in 0..dim {
                let v = emb[f * dim + d];
                self.sum_d[d] += v;
                sq += v * v;
            }
        }
        0.5 * (self.sum_d.iter().map(|s| s * s).sum::<f32>() - sq)
    }

    /// Forward-only prediction (no gradient state kept).
    pub fn predict(&mut self, emb: &[f32], dense: &[f32]) -> f32 {
        let logit = self.forward_logit(emb, dense);
        sigmoid(logit)
    }

    fn forward_logit(&mut self, emb: &[f32], dense: &[f32]) -> f32 {
        assert_eq!(emb.len(), self.cfg.fields * self.cfg.dim);
        assert_eq!(dense.len(), self.cfg.dense_features);
        let fm = self.fm_forward(emb);
        let mut x = Vec::with_capacity(self.mlp.input_dim());
        x.extend_from_slice(emb);
        x.extend_from_slice(dense);
        self.bias + fm + self.mlp.forward(&x)
    }

    /// Train on one example: returns `(loss, d_emb)` where `d_emb` is
    /// the gradient wrt the field embeddings (`fields × dim`). Dense
    /// gradients accumulate internally until [`Self::step_dense`].
    pub fn train_example(&mut self, emb: &[f32], dense: &[f32], label: f32) -> (f32, Vec<f32>) {
        let logit = self.forward_logit(emb, dense);
        let p = sigmoid(logit);
        let loss = bce_loss(p, label);
        let dlogit = p - label;

        // MLP path gradient wrt its input.
        let dx = self.mlp.backward(dlogit);
        self.bias_grad += dlogit;

        // FM path gradient: d fm / d v_fd = sum_d − v_fd.
        let (dim, fields) = (self.cfg.dim, self.cfg.fields);
        let mut d_emb = vec![0.0f32; fields * dim];
        for f in 0..fields {
            for d in 0..dim {
                let i = f * dim + d;
                d_emb[i] = dlogit * (self.sum_d[d] - emb[i]) + dx[i];
            }
        }
        (loss, d_emb)
    }

    /// Apply accumulated dense gradients (call once per batch — the
    /// synchronous allreduce equivalent).
    pub fn step_dense(&mut self) {
        self.mlp.step(self.cfg.dense_lr);
        self.bias -= self.cfg.dense_lr * self.bias_grad;
        self.bias_grad = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb_for(fields: usize, dim: usize, seed: f32) -> Vec<f32> {
        (0..fields * dim)
            .map(|i| ((i as f32 + seed) * 0.37).sin() * 0.3)
            .collect()
    }

    #[test]
    fn fm_sum_square_trick_matches_naive() {
        let cfg = DeepFmConfig::small(3, 4);
        let mut fm = DeepFm::new(cfg);
        let emb = emb_for(4, 3, 1.0);
        let fast = fm.fm_forward(&emb);
        // Naive pairwise: Σ_{f<g} <v_f, v_g>.
        let mut naive = 0.0f32;
        for f in 0..4 {
            for g in (f + 1)..4 {
                for d in 0..3 {
                    naive += emb[f * 3 + d] * emb[g * 3 + d];
                }
            }
        }
        assert!((fast - naive).abs() < 1e-4, "{fast} vs {naive}");
    }

    #[test]
    fn embedding_gradient_check() {
        let cfg = DeepFmConfig::small(3, 2);
        let mut fm = DeepFm::new(cfg);
        let emb = emb_for(2, 3, 2.0);
        let (_, d_emb) = fm.train_example(&emb, &[], 1.0);
        let eps = 1e-3f32;
        for i in 0..emb.len() {
            let mut ep = emb.clone();
            ep[i] += eps;
            let mut em = emb.clone();
            em[i] -= eps;
            // Loss at perturbed points (fresh model state is fine:
            // forward is deterministic and dense grads don't apply
            // until step_dense).
            let lp = {
                let p = fm.predict(&ep, &[]);
                crate::model::bce_loss(p, 1.0)
            };
            let lm = {
                let p = fm.predict(&em, &[]);
                crate::model::bce_loss(p, 1.0)
            };
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - d_emb[i]).abs() < 2e-2,
                "d_emb[{i}]: analytic {} vs numeric {num}",
                d_emb[i]
            );
        }
    }

    #[test]
    fn loss_decreases_when_training_embeddings() {
        // Fixed synthetic task: two "users" with opposite labels; only
        // the embeddings (our gradients) adapt.
        let cfg = DeepFmConfig::small(4, 3);
        let mut fm = DeepFm::new(cfg);
        let mut emb_a = emb_for(3, 4, 1.0);
        let mut emb_b = emb_for(3, 4, 9.0);
        let lr = 0.1f32;
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let (la, da) = fm.train_example(&emb_a, &[], 1.0);
            for (w, g) in emb_a.iter_mut().zip(&da) {
                *w -= lr * g;
            }
            let (lb, db) = fm.train_example(&emb_b, &[], 0.0);
            for (w, g) in emb_b.iter_mut().zip(&db) {
                *w -= lr * g;
            }
            fm.step_dense();
            let total = la + lb;
            first.get_or_insert(total);
            last = total;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "loss fell: {} → {last}",
            first.unwrap()
        );
    }

    #[test]
    fn dense_features_enter_the_mlp() {
        let mut cfg = DeepFmConfig::small(2, 2);
        cfg.dense_features = 3;
        let mut fm = DeepFm::new(cfg);
        let emb = emb_for(2, 2, 0.0);
        let a = fm.predict(&emb, &[0.0, 0.0, 0.0]);
        let b = fm.predict(&emb, &[1.0, -1.0, 0.5]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn wrong_embedding_shape_panics() {
        let mut fm = DeepFm::new(DeepFmConfig::small(4, 4));
        fm.predict(&[0.0; 3], &[]);
    }
}
