//! A minimal dense multi-layer perceptron with manual backprop.
//!
//! Layers are fully connected with ReLU between hidden layers and a
//! linear final output. Gradients accumulate into internal buffers
//! (so a batch can sum example gradients) and [`Mlp::step`] applies a
//! plain-SGD update — the dense part of a DLRM is tiny (<1 % of
//! parameters, paper §II-A) and its optimizer choice is immaterial to
//! the systems results.

use oe_core::init::splitmix64;

struct Layer {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f32>,  // out × in, row-major
    b: Vec<f32>,  // out
    gw: Vec<f32>, // accumulated gradients
    gb: Vec<f32>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        // He initialization scaled by fan-in.
        let scale = (2.0 / in_dim as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|i| {
                let h = splitmix64(seed ^ (i as u64));
                ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0 * scale
            })
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f32], y: &mut Vec<f32>) {
        y.clear();
        y.reserve(self.out_dim);
        for o in 0..self.out_dim {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wi, xi) in row.iter().zip(x) {
                acc += wi * xi;
            }
            y.push(acc);
        }
    }

    /// dy: gradient wrt outputs; x: cached input. Accumulates gw/gb and
    /// writes gradient wrt input into dx.
    fn backward(&mut self, x: &[f32], dy: &[f32], dx: &mut Vec<f32>) {
        dx.clear();
        dx.resize(self.in_dim, 0.0);
        for (o, &g) in dy.iter().enumerate().take(self.out_dim) {
            self.gb[o] += g;
            let row = o * self.in_dim;
            for i in 0..self.in_dim {
                self.gw[row + i] += g * x[i];
                dx[i] += g * self.w[row + i];
            }
        }
    }

    fn step(&mut self, lr: f32) {
        for (w, g) in self.w.iter_mut().zip(self.gw.iter_mut()) {
            *w -= lr * *g;
            *g = 0.0;
        }
        for (b, g) in self.b.iter_mut().zip(self.gb.iter_mut()) {
            *b -= lr * *g;
            *g = 0.0;
        }
    }
}

/// A dense MLP: hidden layers with ReLU, linear scalar output.
pub struct Mlp {
    layers: Vec<Layer>,
    /// Cached activations per layer input (for backprop).
    acts: Vec<Vec<f32>>,
    scratch: Vec<f32>,
}

impl Mlp {
    /// `dims = [input, hidden..., 1]`; deterministic init from `seed`.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert_eq!(*dims.last().unwrap(), 1, "scalar logit output");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, d)| Layer::new(d[0], d[1], splitmix64(seed ^ (i as u64) << 17)))
            .collect();
        Self {
            layers,
            acts: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass, caching activations; returns the scalar logit.
    pub fn forward(&mut self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.input_dim());
        self.acts.clear();
        self.acts.push(x.to_vec());
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = Vec::new();
            layer.forward(self.acts.last().unwrap(), &mut y);
            if i + 1 < n {
                for v in &mut y {
                    *v = v.max(0.0); // ReLU
                }
            }
            self.acts.push(y);
        }
        self.acts.last().unwrap()[0]
    }

    /// Backward from `dlogit` (d loss / d logit) using the activations
    /// cached by the immediately preceding [`Self::forward`]. Returns
    /// the gradient wrt the input vector. Parameter gradients
    /// accumulate until [`Self::step`].
    pub fn backward(&mut self, dlogit: f32) -> Vec<f32> {
        let n = self.layers.len();
        let mut dy = vec![dlogit];
        for i in (0..n).rev() {
            // Undo ReLU for hidden outputs: dy *= 1[pre-act > 0]. The
            // cached act is post-ReLU, which is zero exactly where the
            // pre-activation was clamped.
            if i + 1 < n {
                let act = &self.acts[i + 1];
                for (d, &a) in dy.iter_mut().zip(act) {
                    if a <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            let x = std::mem::take(&mut self.acts[i]);
            self.layers[i].backward(&x, &dy, &mut self.scratch);
            self.acts[i] = x;
            dy = self.scratch.clone();
        }
        dy
    }

    /// Apply accumulated gradients with SGD and reset them.
    pub fn step(&mut self, lr: f32) {
        for l in &mut self.layers {
            l.step(lr);
        }
    }

    /// Bytes of dense parameters (for the dense-checkpoint cost model).
    pub fn param_bytes(&self) -> usize {
        self.num_params() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_init() {
        let mut a = Mlp::new(&[4, 8, 1], 7);
        let mut b = Mlp::new(&[4, 8, 1], 7);
        let x = [0.5, -0.25, 1.0, 0.0];
        assert_eq!(a.forward(&x), b.forward(&x));
        let mut c = Mlp::new(&[4, 8, 1], 8);
        assert_ne!(a.forward(&x), c.forward(&x));
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        let mut mlp = Mlp::new(&[3, 5, 4, 1], 42);
        let x = [0.3f32, -0.7, 0.9];
        // Analytic input gradient of logit wrt x.
        mlp.forward(&x);
        let dx = mlp.backward(1.0);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = (mlp.forward(&xp) - mlp.forward(&xm)) / (2.0 * eps);
            assert!(
                (num - dx[i]).abs() < 2e-2,
                "dx[{i}]: analytic {} vs numeric {num}",
                dx[i]
            );
        }
    }

    #[test]
    fn learns_xor_like_separation() {
        // Fit y = 1 if x0*x1 > 0 else 0 — requires the hidden layer.
        let mut mlp = Mlp::new(&[2, 16, 1], 3);
        let data = [
            ([1.0f32, 1.0], 1.0f32),
            ([-1.0, -1.0], 1.0),
            ([1.0, -1.0], 0.0),
            ([-1.0, 1.0], 0.0),
        ];
        for _ in 0..1500 {
            for (x, y) in &data {
                let logit = mlp.forward(x);
                let p = super::super::sigmoid(logit);
                mlp.backward(p - y);
            }
            mlp.step(0.05);
        }
        let mut correct = 0;
        for (x, y) in &data {
            let p = super::super::sigmoid(mlp.forward(x));
            if (p > 0.5) == (*y > 0.5) {
                correct += 1;
            }
        }
        assert_eq!(correct, 4, "XOR learned");
    }

    #[test]
    fn step_resets_gradients() {
        let mut mlp = Mlp::new(&[2, 3, 1], 1);
        mlp.forward(&[1.0, 2.0]);
        mlp.backward(1.0);
        mlp.step(0.1);
        let w_after = mlp.forward(&[1.0, 2.0]);
        // A second step with no new backward must not move weights.
        mlp.step(0.1);
        assert_eq!(mlp.forward(&[1.0, 2.0]), w_after);
    }

    #[test]
    fn param_count() {
        let mlp = Mlp::new(&[4, 8, 1], 0);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 + 1);
        assert_eq!(mlp.param_bytes(), (4 * 8 + 8 + 8 + 1) * 4);
    }
}
