//! Pure-Rust DLRM model: a DeepFM (factorization machine + MLP) with
//! full forward/backward, used for functional end-to-end training. The
//! paper runs DeepFM (ref. 36) via the DeepCTR framework on TensorFlow; this
//! is a faithful small-scale reimplementation producing real gradients
//! for the parameter server.

pub mod deepfm;
pub mod mlp;

pub use deepfm::{DeepFm, DeepFmConfig};
pub use mlp::Mlp;

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy of probability `p` against `label` ∈ {0,1},
/// clamped for stability.
#[inline]
pub fn bce_loss(p: f32, label: f32) -> f32 {
    let p = p.clamp(1e-7, 1.0 - 1e-7);
    -(label * p.ln() + (1.0 - label) * (1.0 - p).ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Stable at extremes.
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn bce_behaviour() {
        assert!(bce_loss(0.9, 1.0) < bce_loss(0.1, 1.0));
        assert!((bce_loss(0.5, 1.0) - std::f32::consts::LN_2).abs() < 1e-3);
        // Never NaN/inf even for p at the boundary.
        assert!(bce_loss(0.0, 1.0).is_finite());
        assert!(bce_loss(1.0, 0.0).is_finite());
    }
}
