//! Network cost model: the 30 Gb intranet + low-overhead RPC of the
//! paper's testbed (§VI-A).

use oe_simdevice::Nanos;
use serde::Serialize;

/// Per-worker network model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NetModel {
    /// Per-request RPC overhead (ns) — serialization + kernel bypass.
    pub rpc_overhead_ns: u64,
    /// Link bandwidth in bytes/ns (30 Gb/s ≈ 3.75 GB/s ≈ 3.75 B/ns).
    pub bw_bytes_per_ns: f64,
}

impl NetModel {
    /// The paper's testbed: 30 Gb intranet, RDMA-style RPC.
    pub fn paper_default() -> Self {
        Self {
            rpc_overhead_ns: 15_000,
            bw_bytes_per_ns: 3.75,
        }
    }

    /// Time for one worker to pull `keys` embeddings of `dim` f32s:
    /// request carries the ids, response the weights.
    pub fn pull_ns(&self, keys: usize, dim: usize) -> Nanos {
        let bytes = keys * 8 + keys * dim * 4;
        self.rpc_overhead_ns + (bytes as f64 / self.bw_bytes_per_ns) as u64
    }

    /// Time for one worker to push `keys` gradients of `dim` f32s.
    pub fn push_ns(&self, keys: usize, dim: usize) -> Nanos {
        let bytes = keys * (8 + dim * 4);
        self.rpc_overhead_ns + (bytes as f64 / self.bw_bytes_per_ns) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_push_symmetric_in_payload() {
        let n = NetModel::paper_default();
        assert_eq!(n.pull_ns(100, 64), n.push_ns(100, 64));
        assert!(n.pull_ns(1000, 64) > n.pull_ns(100, 64));
    }

    #[test]
    fn magnitude() {
        let n = NetModel::paper_default();
        // 10k keys × 64 dims ≈ 2.6 MB → ~0.7 ms on 30 Gb.
        let t = n.pull_ns(10_000, 64);
        assert!((500_000..2_000_000).contains(&t), "t = {t}");
    }
}
