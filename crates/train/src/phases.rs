//! Per-batch phase timing breakdown.

use oe_simdevice::Nanos;
use serde::Serialize;

/// Virtual-time breakdown of one synchronous training batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PhaseBreakdown {
    /// Pull burst on the critical path (PS service + network).
    pub pull_ns: Nanos,
    /// Deferred maintenance work (overlappable with compute).
    pub maintain_ns: Nanos,
    /// Maintenance time that exceeded compute and spilled onto the
    /// critical path.
    pub spill_ns: Nanos,
    /// GPU compute (max across workers).
    pub compute_ns: Nanos,
    /// Push burst on the critical path.
    pub push_ns: Nanos,
    /// Synchronous checkpoint pause (zero for batch-aware checkpointing).
    pub ckpt_pause_ns: Nanos,
}

impl PhaseBreakdown {
    /// Critical-path duration of the batch.
    pub fn total_ns(&self) -> Nanos {
        self.pull_ns + self.compute_ns.max(1) + self.spill_ns + self.push_ns + self.ckpt_pause_ns
    }

    /// Accumulate another batch's breakdown.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.pull_ns += other.pull_ns;
        self.maintain_ns += other.maintain_ns;
        self.spill_ns += other.spill_ns;
        self.compute_ns += other.compute_ns;
        self.push_ns += other.push_ns;
        self.ckpt_pause_ns += other.ckpt_pause_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_critical_path_only() {
        let p = PhaseBreakdown {
            pull_ns: 10,
            maintain_ns: 100, // hidden: not on the critical path
            spill_ns: 5,
            compute_ns: 50,
            push_ns: 20,
            ckpt_pause_ns: 0,
        };
        assert_eq!(p.total_ns(), 10 + 50 + 5 + 20);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = PhaseBreakdown::default();
        let b = PhaseBreakdown {
            pull_ns: 1,
            maintain_ns: 2,
            spill_ns: 3,
            compute_ns: 4,
            push_ns: 5,
            ckpt_pause_ns: 6,
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.pull_ns, 2);
        assert_eq!(a.ckpt_pause_ns, 12);
    }
}
