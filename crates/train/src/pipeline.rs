//! The pipelined training driver: overlapped pull / compute / push.
//!
//! The synchronous trainer serializes every batch as
//! `pull → [maintenance ∥ compute] → push`. This driver overlaps the
//! three stages across *windows*:
//!
//! ```text
//!            window t-1              window t                window t+1
//!  GPU    ───[compute t-1]────── ───[compute t]─────── ───[compute t+1]───
//!  PS lane   [apply ≤ t-1-k]       [apply ≤ t-k]          [apply ≤ t+1-k]
//!            [prefetch t]          [prefetch t+1]         [prefetch t+2]
//!  exposed  pull misses t-1 ──── pull misses t ──────── pull misses t+1
//! ```
//!
//! - **Prefetch**: batch `t+1`'s pull is issued during batch `t`'s
//!   compute (via the [`oe_net::PullTicket`] issue/complete split) and
//!   parked in a skew-aware [`PrefetchCache`] ranked by the decaying
//!   [`FreqTracker`] sketch — hot keys stay resident, cold keys stream
//!   through the demand path. Only cache *misses* stay on the critical
//!   path.
//! - **Async pushes**: gradients enqueue instead of applying inline.
//!   The `staleness` knob bounds the queue: during window `t`, every
//!   pending push of batch `≤ t − staleness` is force-applied on the
//!   overlapped PS lane. `staleness = 0` degenerates to the fully
//!   synchronous schedule and is **bit-identical** to
//!   [`crate::SyncTrainer`] — same weights, same engine counters, same
//!   virtual nanoseconds (enforced by `tests/pipeline_e2e.rs`).
//! - **Cost composition**: each window's overlapped stages merge via
//!   [`PipelineWindow`] — max over lanes for the overlapped portion
//!   (the DES generalization of the sync trainer's maintenance-spill
//!   rule), plus the exposed pull and any serial tail.
//!
//! Coherence: the cache is fenced on every out-of-band apply (applied
//! keys are invalidated before the next prefetch re-pulls them), and a
//! [`CoherenceSource`] lets placement-plane events — a live shard
//! migration cutover — invalidate moved keys exactly once. A lookup
//! therefore never returns weights that differ from a demand pull at
//! the same point in the schedule.
//!
//! Staleness semantics: with `staleness = k`, the pull of batch `t`
//! observes all applies `≤ t − 1 − k`; pushes from the last `k` batches
//! may still be in flight. Every pull of a key with a pending unapplied
//! push is counted by the per-key conflict accounting
//! ([`PipelineReport::stale_read_occurrences`]); at `k = 0` that count
//! is provably zero. Checkpoints are barriers: the queue drains
//! serially before the checkpoint request, so a committed checkpoint
//! never misses an enqueued gradient.

use crate::model::DeepFm;
use crate::phases::PhaseBreakdown;
use crate::report::TrainReport;
use crate::trainer::{teacher_label, worker_grads, Backend, BatchCtx, RunAcc};
use crate::{TrainMode, TrainerConfig};
use oe_cache::PrefetchCache;
use oe_cluster::FreqTracker;
use oe_core::engine::PsEngine;
use oe_core::{BatchId, Key};
use oe_net::{Error as NetError, PsClient};
use oe_simdevice::clock::Nanos;
use oe_simdevice::{Cost, PipelineWindow, VirtualClock};
use oe_workload::{Batch, LookaheadGen, WorkloadGen, WorkloadSpec};
use serde::Serialize;
use std::collections::{HashMap, HashSet, VecDeque};

/// Placement-plane events that stale prefetched entries: a live shard
/// migration moves a key's authoritative copy, so any row prefetched
/// from the old placement must drop. Implemented by
/// [`oe_cluster::PlacedCluster`]; draining is destructive, so each
/// moved key is surfaced — and invalidated — exactly once.
pub trait CoherenceSource {
    /// Keys whose placement changed since the last drain.
    fn drain_invalidations(&self) -> Vec<Key>;
}

impl<E: PsEngine> CoherenceSource for oe_cluster::PlacedCluster<E> {
    fn drain_invalidations(&self) -> Vec<Key> {
        self.drain_moved_keys()
    }
}

/// Pipeline knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Maximum batches of pushes allowed in flight. `0` reproduces the
    /// synchronous trainer bit-for-bit; `k ≥ 1` lets up to `k` batches
    /// of pushes complete out-of-band.
    pub staleness: usize,
    /// Prefetch-cache capacity in entries. `0` disables prefetching
    /// (every pull stays on the demand path).
    pub prefetch_capacity: usize,
    /// Decay the heat sketch every this many windows (`0` = never), so
    /// admission tracks the *current* hot set under popularity drift.
    pub heat_decay_every: u64,
}

impl PipelineConfig {
    /// Fully synchronous schedule: no overlap, no cache.
    pub fn sync() -> Self {
        Self {
            staleness: 0,
            prefetch_capacity: 0,
            heat_decay_every: 64,
        }
    }

    /// Bounded-staleness schedule.
    pub fn bounded(staleness: usize, prefetch_capacity: usize) -> Self {
        Self {
            staleness,
            prefetch_capacity,
            heat_decay_every: 64,
        }
    }
}

/// A batch's enqueued gradient bursts (one per worker), awaiting apply.
struct PendingPush {
    batch: BatchId,
    bursts: Vec<(Vec<Key>, Vec<f32>)>,
}

/// Outcome of a pipelined run: the familiar [`TrainReport`] plus
/// pipeline-specific accounting.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// The underlying training report (virtual time, phases, engine
    /// counter deltas, loss, checkpoints).
    pub train: TrainReport,
    /// Staleness bound the run used.
    pub staleness: usize,
    /// Prefetch-cache hits at serve time.
    pub prefetch_hits: u64,
    /// Serve-time lookups that fell through to a demand pull.
    pub prefetch_misses: u64,
    /// Cache entries dropped for hotter keys.
    pub prefetch_evictions: u64,
    /// Cache entries dropped by coherence fences (applied pushes,
    /// migration cutovers).
    pub prefetch_invalidations: u64,
    /// Rows admitted by the prefetcher.
    pub prefetch_inserts: u64,
    /// Prefetch offers refused by skew-aware admission.
    pub prefetch_admission_rejects: u64,
    /// Fraction of serve-time lookups answered from the cache.
    pub prefetch_hit_rate: f64,
    /// Pulled key occurrences whose key had a pending unapplied push
    /// (always 0 at staleness 0).
    pub stale_read_occurrences: u64,
    /// Distinct keys ever pulled while a push to them was pending.
    pub stale_read_keys: u64,
    /// Push batches applied out-of-band on the overlapped lane.
    pub async_applied_batches: u64,
    /// Virtual time hidden under the GPU lane by overlap (sum over
    /// windows of `serial − critical`).
    pub hidden_ns: Nanos,
    /// Serial time spent draining the push queue at checkpoint barriers
    /// and the end-of-run epilogue.
    pub drain_ns: Nanos,
}

impl PipelineReport {
    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{} staleness={} time={:>10.3}ms/batch hit={:>5.1}% stale_reads={} hidden={:.3}ms",
            self.train.engine,
            self.staleness,
            self.train.ns_per_batch() / 1e6,
            self.prefetch_hit_rate * 100.0,
            self.stale_read_occurrences,
            self.hidden_ns as f64 / 1e6,
        )
    }
}

/// The pipelined trainer. Owns its (pure, replayable) workload
/// generator so the lookahead memo can peek one batch ahead.
pub struct PipelinedTrainer<'a> {
    backend: Backend<'a>,
    gen: LookaheadGen,
    cfg: TrainerConfig,
    pcfg: PipelineConfig,
    clock: VirtualClock,
    model: Option<DeepFm>,
    cache: PrefetchCache,
    heat: FreqTracker,
    pending: VecDeque<PendingPush>,
    pending_refs: HashMap<Key, u32>,
    coherence: Option<&'a dyn CoherenceSource>,
    windows_run: u64,
    stale_occurrences: u64,
    stale_keys: HashSet<Key>,
    async_applied_batches: u64,
    hidden_ns: Nanos,
    drain_ns: Nanos,
}

impl<'a> PipelinedTrainer<'a> {
    /// Build over an in-process engine.
    pub fn new(
        engine: &'a dyn PsEngine,
        spec: WorkloadSpec,
        cfg: TrainerConfig,
        pcfg: PipelineConfig,
    ) -> Self {
        Self::build(Backend::Engine(engine), spec, cfg, pcfg)
    }

    /// Build over any [`PsClient`] backend.
    pub fn with_client(
        client: &'a dyn PsClient,
        spec: WorkloadSpec,
        cfg: TrainerConfig,
        pcfg: PipelineConfig,
    ) -> Self {
        Self::build(Backend::Client(client), spec, cfg, pcfg)
    }

    fn build(
        backend: Backend<'a>,
        spec: WorkloadSpec,
        cfg: TrainerConfig,
        pcfg: PipelineConfig,
    ) -> Self {
        let model = match &cfg.mode {
            TrainMode::DeepFm(mcfg) => {
                assert_eq!(mcfg.dim, backend.dim(), "model dim must match PS");
                assert_eq!(mcfg.fields, spec.fields, "model fields must match workload");
                Some(DeepFm::new(mcfg.clone()))
            }
            TrainMode::Synthetic { .. } => None,
        };
        let dim = backend.dim();
        Self {
            backend,
            gen: LookaheadGen::new(WorkloadGen::new(spec)),
            cfg,
            clock: VirtualClock::new(),
            model,
            cache: PrefetchCache::new(pcfg.prefetch_capacity, dim),
            pcfg,
            heat: FreqTracker::new(),
            pending: VecDeque::new(),
            pending_refs: HashMap::new(),
            coherence: None,
            windows_run: 0,
            stale_occurrences: 0,
            stale_keys: HashSet::new(),
            async_applied_batches: 0,
            hidden_ns: 0,
            drain_ns: 0,
        }
    }

    /// Subscribe placement-plane invalidations (shard migration
    /// cutovers drop moved keys from the prefetch cache).
    pub fn set_coherence(&mut self, src: &'a dyn CoherenceSource) {
        self.coherence = Some(src);
    }

    /// Virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Run `batches` windows starting at `start_batch`; panics on
    /// backend failure.
    pub fn run(&mut self, start_batch: BatchId, batches: u64) -> PipelineReport {
        self.try_run(start_batch, batches)
            .unwrap_or_else(|e| panic!("training backend failed: {e}"))
    }

    /// Fallible run. Unlike [`crate::SyncTrainer`], the pipelined path
    /// does not absorb failovers (an async queue cannot replay through
    /// a rewind without violating the staleness bound); backend errors
    /// propagate.
    pub fn try_run(
        &mut self,
        start_batch: BatchId,
        batches: u64,
    ) -> Result<PipelineReport, NetError> {
        self.try_run_with_hook(start_batch, batches, |_| {})
    }

    /// [`PipelinedTrainer::try_run`] with a hook fired after every
    /// completed window — the same out-of-band control seam as the sync
    /// trainer's (rebalancers forcing a migration mid-epoch, tests
    /// asserting at window boundaries).
    pub fn try_run_with_hook(
        &mut self,
        start_batch: BatchId,
        batches: u64,
        mut hook: impl FnMut(BatchId),
    ) -> Result<PipelineReport, NetError> {
        let ctx = BatchCtx::new(self.backend.dim(), self.gen.spec().clone(), &self.cfg);
        let stats0 = self.backend.stats()?;
        let mut acc = RunAcc::new();

        let end = start_batch + batches;
        for b in start_batch..end {
            self.run_window(b, end, &ctx, &mut acc)?;
            hook(b);
        }

        // Epilogue: the last k batches' pushes are still pending —
        // drain them serially so the run leaves the same weights a
        // synchronous run of the same gradients would.
        let drain = self.drain_pending(&ctx)?;
        self.clock.advance(drain);

        let prefetch = self.cache.stats();
        Ok(PipelineReport {
            train: TrainReport {
                engine: self.backend.name(),
                workers: self.cfg.workers,
                batches,
                total_ns: self.clock.now(),
                phases: acc.phases,
                stats: self.backend.stats()?.delta_since(&stats0),
                avg_loss: if acc.loss_count > 0 {
                    Some(acc.loss_sum / acc.loss_count as f64)
                } else {
                    None
                },
                checkpoints_taken: acc.ckpts_taken,
                committed_checkpoint: self.backend.committed_checkpoint()?,
                failovers: 0,
                rewound_batches: 0,
                trace_per_ms: None,
                pull_hist: acc.pull_hist.snapshot(),
                maintain_hist: acc.maintain_hist.snapshot(),
                push_hist: acc.push_hist.snapshot(),
                batch_hist: acc.batch_hist.snapshot(),
            },
            staleness: self.pcfg.staleness,
            prefetch_hits: prefetch.hits,
            prefetch_misses: prefetch.misses,
            prefetch_evictions: prefetch.evictions,
            prefetch_invalidations: prefetch.invalidations,
            prefetch_inserts: prefetch.inserts,
            prefetch_admission_rejects: prefetch.admission_rejects,
            prefetch_hit_rate: prefetch.hit_rate(),
            stale_read_occurrences: self.stale_occurrences,
            stale_read_keys: self.stale_keys.len() as u64,
            async_applied_batches: self.async_applied_batches,
            hidden_ns: self.hidden_ns,
            drain_ns: self.drain_ns,
        })
    }

    /// One pipelined window: serve pulls (cache + demand), overlap
    /// [maintenance ∥ compute ∥ due applies + prefetch], enqueue the
    /// window's own push, advance the clock by the composed cost.
    fn run_window(
        &mut self,
        b: BatchId,
        end: BatchId,
        ctx: &BatchCtx,
        acc: &mut RunAcc,
    ) -> Result<(), NetError> {
        let backend = self.backend;
        let dim = ctx.dim;
        let k = self.pcfg.staleness as u64;
        let caching = self.pcfg.staleness >= 1 && self.cache.capacity() > 0;
        let mut batch_phase = PhaseBreakdown::default();

        // ---- coherence fences from the placement plane ----
        if let Some(src) = self.coherence {
            let moved = src.drain_invalidations();
            if !moved.is_empty() {
                self.cache.invalidate(&moved);
            }
        }

        // ---- heat decay (tracks the current hot set under drift) ----
        if self.pcfg.heat_decay_every > 0
            && self.windows_run > 0
            && self.windows_run.is_multiple_of(self.pcfg.heat_decay_every)
        {
            self.heat.decay();
        }
        self.windows_run += 1;

        // ---- serve pulls: cache hits + demand misses ----
        let global: Vec<Batch> = self.gen.global_batch(b).to_vec();
        let mut pull_cost = Cost::new();
        let mut net_pull: Nanos = 0;
        let mut worker_data: Vec<(Batch, Vec<f32>)> = Vec::with_capacity(global.len());
        for wb in global {
            for &key in &wb.unique_keys {
                self.heat.observe(key, 1);
                if self.pending_refs.contains_key(&key) {
                    self.stale_occurrences += 1;
                    self.stale_keys.insert(key);
                }
            }
            let mut weights = Vec::with_capacity(wb.unique_keys.len() * dim);
            if !caching {
                // Staleness 0: every key takes the demand path — the
                // exact arithmetic of the synchronous trainer.
                backend.pull(&wb.unique_keys, b, &mut weights, &mut pull_cost)?;
                net_pull = net_pull.max(self.cfg.net.pull_ns(wb.unique_keys.len(), dim));
            } else {
                let mut hit_rows: Vec<f32> = Vec::new();
                let mut kinds: Vec<bool> = Vec::with_capacity(wb.unique_keys.len());
                let mut miss_keys: Vec<Key> = Vec::new();
                for &key in &wb.unique_keys {
                    if self.cache.lookup(key, &mut hit_rows) {
                        kinds.push(true);
                    } else {
                        kinds.push(false);
                        miss_keys.push(key);
                    }
                }
                let mut miss_rows: Vec<f32> = Vec::new();
                if !miss_keys.is_empty() {
                    backend.pull(&miss_keys, b, &mut miss_rows, &mut pull_cost)?;
                    net_pull = net_pull.max(self.cfg.net.pull_ns(miss_keys.len(), dim));
                }
                let (mut hi, mut mi) = (0usize, 0usize);
                for &is_hit in &kinds {
                    if is_hit {
                        weights.extend_from_slice(&hit_rows[hi * dim..(hi + 1) * dim]);
                        hi += 1;
                    } else {
                        weights.extend_from_slice(&miss_rows[mi * dim..(mi + 1) * dim]);
                        mi += 1;
                    }
                }
            }
            worker_data.push((wb, weights));
        }
        batch_phase.pull_ns = ctx.pull_model.burst_ns(&pull_cost) + net_pull;

        // ---- deferred maintenance ∥ GPU compute ----
        let m = backend.end_pull_phase(b)?;
        batch_phase.maintain_ns = ctx.maint_model.burst_ns(&m.cost);
        batch_phase.compute_ns = self.cfg.gpu.compute_ns(
            ctx.spec.batch_size / self.cfg.workers.max(1) as usize,
            ctx.spec.fields,
            dim,
        );

        // ---- gradients (shared verbatim with the sync trainer) ----
        let mut bursts: Vec<(Vec<Key>, Vec<f32>)> = Vec::with_capacity(worker_data.len());
        for (wb, weights) in &worker_data {
            let grads = worker_grads(
                &self.cfg.mode,
                &mut self.model,
                wb,
                weights,
                b,
                dim,
                ctx.spec.fields,
                acc,
            );
            bursts.push((wb.unique_keys.clone(), grads));
        }
        if let Some(model) = self.model.as_mut() {
            model.step_dense(); // synchronous allreduce equivalent
        }

        // ---- enqueue this window's push ----
        for (keys, _) in &bursts {
            for &key in keys {
                *self.pending_refs.entry(key).or_insert(0) += 1;
            }
        }
        self.pending.push_back(PendingPush { batch: b, bursts });

        // ---- apply pushes past their staleness deadline ----
        // At k = 0 the deadline is this window's own push: it applies
        // here, serially, exactly like the sync trainer's push burst.
        // At k ≥ 1 the due batch applies on the overlapped PS lane.
        let mut apply_ns: Nanos = 0;
        while self.pending.front().is_some_and(|p| p.batch + k <= b) {
            let p = self.pending.pop_front().expect("front checked");
            let mut c = Cost::new();
            let mut net: Nanos = 0;
            for (keys, grads) in &p.bursts {
                if k == 0 {
                    backend.push(keys, grads, p.batch, &mut c)?;
                } else {
                    backend.push_async(keys, grads, p.batch, &mut c)?;
                }
                net = net.max(self.cfg.net.push_ns(keys.len(), dim));
                self.release_pending_keys(keys);
            }
            apply_ns += ctx.pull_model.burst_ns(&c) + net;
            if k >= 1 {
                self.async_applied_batches += 1;
            }
        }

        // ---- prefetch the next window's keys onto the PS lane ----
        // After the applies above, so the rows it parks reflect the
        // same watermark the next window's demand pulls will see.
        let mut prefetch_ns: Nanos = 0;
        if caching && b + 1 < end {
            let next = self.gen.unique_union(b + 1);
            let mut cand: Vec<Key> = Vec::new();
            for key in next {
                if !self.cache.contains(key) && self.cache.admissible(key, &self.heat) {
                    cand.push(key);
                }
            }
            if !cand.is_empty() {
                let mut c = Cost::new();
                let mut rows: Vec<f32> = Vec::new();
                let ticket = backend.pull_issue(&cand, b + 1)?;
                backend.pull_complete(ticket, &mut rows, &mut c)?;
                for (i, &key) in cand.iter().enumerate() {
                    self.cache
                        .insert(key, &rows[i * dim..(i + 1) * dim], &self.heat);
                }
                prefetch_ns = ctx.pull_model.burst_ns(&c) + self.cfg.net.pull_ns(cand.len(), dim);
            }
        }

        // ---- compose the window's virtual time ----
        let mut window = PipelineWindow::new();
        window.charge("gpu", batch_phase.compute_ns);
        window.charge("maintain", batch_phase.maintain_ns);
        if k >= 1 {
            window.charge("ps", apply_ns + prefetch_ns);
        }
        let critical = window.critical_ns();
        self.hidden_ns += window.hidden_ns();
        batch_phase.spill_ns = critical.saturating_sub(batch_phase.compute_ns);
        batch_phase.push_ns = if k == 0 { apply_ns } else { 0 };
        self.clock
            .advance(batch_phase.pull_ns + critical + batch_phase.push_ns);

        // ---- checkpoint (a barrier: drain the queue first) ----
        if let Some(cp) = self.cfg.ckpt.due(self.clock.now(), b) {
            let drain = self.drain_pending(ctx)?;
            self.clock.advance(drain);
            let inline = backend.request_checkpoint(cp)?;
            let mut pause = ctx.ckpt_model.burst_ns(&inline);
            pause += self.cfg.dense_ckpt_pause_ns;
            batch_phase.ckpt_pause_ns = pause;
            self.clock.advance(pause);
            acc.ckpts_taken += 1;
        }

        acc.pull_hist.record(batch_phase.pull_ns);
        acc.maintain_hist.record(batch_phase.maintain_ns);
        acc.push_hist.record(batch_phase.push_ns);
        acc.batch_hist.record(batch_phase.total_ns());
        acc.phases.accumulate(&batch_phase);
        Ok(())
    }

    /// Serially apply everything still pending (checkpoint barrier and
    /// end-of-run epilogue). Returns the virtual time to charge.
    fn drain_pending(&mut self, ctx: &BatchCtx) -> Result<Nanos, NetError> {
        let backend = self.backend;
        let dim = ctx.dim;
        let mut total: Nanos = 0;
        while let Some(p) = self.pending.pop_front() {
            let mut c = Cost::new();
            let mut net: Nanos = 0;
            for (keys, grads) in &p.bursts {
                backend.push(keys, grads, p.batch, &mut c)?;
                net = net.max(self.cfg.net.push_ns(keys.len(), dim));
                self.release_pending_keys(keys);
            }
            total += ctx.pull_model.burst_ns(&c) + net;
        }
        self.drain_ns += total;
        Ok(total)
    }

    /// An applied push releases its keys' pending refs and fences the
    /// prefetch cache (the cached rows predate the apply).
    fn release_pending_keys(&mut self, keys: &[Key]) {
        for &key in keys {
            if let Some(n) = self.pending_refs.get_mut(&key) {
                *n -= 1;
                if *n == 0 {
                    self.pending_refs.remove(&key);
                }
            }
        }
        self.cache.invalidate(keys);
    }

    /// Held-out accuracy of the DeepFM against the synthetic teacher:
    /// generates `eval_batches` batches from a seed-shifted copy of the
    /// workload (keys the trainer never saw as (batch, input) pairs),
    /// reads current weights through the costless diagnostic path, and
    /// scores `predict ≥ 0.5` against the teacher label. `None` in
    /// synthetic-gradient mode. Inputs touching keys the PS has never
    /// initialized are skipped (they carry no trained signal).
    pub fn eval_accuracy(&mut self, eval_seed: u64, eval_batches: u64) -> Option<f64> {
        self.model.as_ref()?;
        let backend = self.backend;
        let dim = self.backend.dim();
        let mut spec = self.gen.spec().clone();
        spec.seed ^= eval_seed;
        let fields = spec.fields;
        let gen = WorkloadGen::new(spec);
        let model = self.model.as_mut().expect("checked above");
        let (mut correct, mut total) = (0u64, 0u64);
        for b in 0..eval_batches {
            let wb = gen.worker_batch(b, 0);
            for (ii, input) in wb.input_keys.iter().enumerate() {
                let mut emb = vec![0.0f32; fields * dim];
                let mut known = true;
                for (f, k) in input.iter().enumerate() {
                    match backend.read_weights(*k) {
                        Some(w) => emb[f * dim..(f + 1) * dim].copy_from_slice(&w[..dim]),
                        None => {
                            known = false;
                            break;
                        }
                    }
                }
                if !known {
                    continue;
                }
                let p = model.predict(&emb, &[]);
                let label = teacher_label(input, b, ii);
                if (p >= 0.5) == (label >= 0.5) {
                    correct += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            None
        } else {
            Some(correct as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyncTrainer;
    use oe_core::{CheckpointScheduler, NodeConfig, OptimizerKind, PsNode};
    use oe_workload::SkewModel;

    fn small_spec(workers: usize) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: 2_000,
            fields: 4,
            batch_size: 64,
            workers,
            skew: SkewModel::paper_fit(),
            seed: 5,
            drift_keys_per_batch: 0,
        }
    }

    fn node() -> PsNode {
        let mut cfg = NodeConfig::small(8);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = 400 * cfg.bytes_per_cached_entry();
        PsNode::new(cfg)
    }

    #[test]
    fn staleness_zero_is_bit_identical_to_sync() {
        let sync_node = node();
        let gen = WorkloadGen::new(small_spec(2));
        let mut sync = SyncTrainer::new(&sync_node, &gen, TrainerConfig::paper(2));
        let sr = sync.run(1, 12);

        let pipe_node = node();
        let mut pipe = PipelinedTrainer::new(
            &pipe_node,
            small_spec(2),
            TrainerConfig::paper(2),
            PipelineConfig::sync(),
        );
        let pr = pipe.run(1, 12);

        assert_eq!(sr.total_ns, pr.train.total_ns, "virtual time");
        assert_eq!(sr.stats, pr.train.stats, "engine counters");
        assert_eq!(pr.stale_read_occurrences, 0);
        assert_eq!(pr.async_applied_batches, 0);
        for key in [0u64, 1, 7, 42] {
            assert_eq!(
                sync_node.read_weights(key),
                pipe_node.read_weights(key),
                "weights of {key}"
            );
        }
    }

    #[test]
    fn bounded_staleness_beats_sync_virtual_time() {
        let run = |pcfg: PipelineConfig| {
            let n = node();
            let mut t = PipelinedTrainer::new(&n, small_spec(2), TrainerConfig::paper(2), pcfg);
            t.run(1, 30)
        };
        let sync = run(PipelineConfig::sync());
        let async2 = run(PipelineConfig::bounded(2, 4096));
        assert!(
            async2.train.total_ns < sync.train.total_ns,
            "overlap must help: sync {} vs k=2 {}",
            sync.train.total_ns,
            async2.train.total_ns
        );
        assert!(
            async2.prefetch_hit_rate > 0.3,
            "{}",
            async2.prefetch_hit_rate
        );
        assert!(async2.stale_read_occurrences > 0, "conflicts tracked");
        assert!(async2.async_applied_batches > 0);
        assert!(async2.hidden_ns > 0);
    }

    #[test]
    fn checkpoint_is_a_barrier() {
        let n = node();
        let mut cfg = TrainerConfig::paper(2);
        cfg.ckpt = CheckpointScheduler::every(1);
        let mut t = PipelinedTrainer::new(&n, small_spec(2), cfg, PipelineConfig::bounded(3, 1024));
        let r = t.run(1, 8);
        assert!(r.train.checkpoints_taken >= 7);
        assert!(r.drain_ns > 0, "barriers drained the queue");
        // Every enqueued push applied by the end: no pending refs leak.
        assert_eq!(t.pending.len(), 0);
        assert!(t.pending_refs.is_empty());
    }

    #[test]
    fn epilogue_drain_leaves_no_pending_pushes() {
        let n = node();
        let mut t = PipelinedTrainer::new(
            &n,
            small_spec(2),
            TrainerConfig::paper(2),
            PipelineConfig::bounded(4, 512),
        );
        let r = t.run(1, 10);
        assert!(t.pending.is_empty());
        assert!(t.pending_refs.is_empty());
        assert!(r.drain_ns > 0, "the last k batches drained in the epilogue");
        assert!(r.train.stats.pulls >= 1, "engine served demand traffic");
    }
}
