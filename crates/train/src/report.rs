//! Training run reports.

use crate::phases::PhaseBreakdown;
use oe_core::stats::StatsSnapshot;
use oe_core::BatchId;
use oe_simdevice::Nanos;
use oe_telemetry::HistogramSnapshot;
use oe_workload::trace::MsBucket;
use serde::Serialize;

/// Outcome of a [`crate::SyncTrainer::run`].
#[derive(Debug, Clone, Serialize)]
pub struct TrainReport {
    /// Engine name ("PMem-OE", "DRAM-PS", …).
    pub engine: String,
    /// GPU workers used.
    pub workers: u32,
    /// Batches executed.
    pub batches: u64,
    /// Total virtual time.
    pub total_ns: Nanos,
    /// Accumulated phase breakdown.
    pub phases: PhaseBreakdown,
    /// Engine counter deltas over the run.
    pub stats: StatsSnapshot,
    /// Mean logloss (DeepFM mode only).
    pub avg_loss: Option<f64>,
    /// Checkpoints requested during the run.
    pub checkpoints_taken: u64,
    /// Committed checkpoint at the end of the run.
    pub committed_checkpoint: BatchId,
    /// Completed failovers (primary died, a checkpoint replica was
    /// promoted) absorbed during the run.
    pub failovers: u64,
    /// Batches that had completed but were discarded and replayed
    /// because a failover rolled state back to the committed checkpoint.
    pub rewound_batches: u64,
    /// Fig. 2-style per-millisecond trace, when recorded.
    pub trace_per_ms: Option<Vec<MsBucket>>,
    /// Distribution of pull-burst durations across batches.
    pub pull_hist: HistogramSnapshot,
    /// Distribution of deferred-maintenance durations across batches.
    pub maintain_hist: HistogramSnapshot,
    /// Distribution of push-burst durations across batches.
    pub push_hist: HistogramSnapshot,
    /// Distribution of total batch durations.
    pub batch_hist: HistogramSnapshot,
}

impl TrainReport {
    /// Total virtual seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean virtual time per batch (ns).
    pub fn ns_per_batch(&self) -> f64 {
        self.total_ns as f64 / self.batches.max(1) as f64
    }

    /// Cache miss rate observed over the run.
    pub fn miss_rate(&self) -> f64 {
        self.stats.miss_rate()
    }

    /// Time relative to a baseline report (the "normalized training
    /// time" axis used by every figure in the paper).
    pub fn normalized_to(&self, baseline: &TrainReport) -> f64 {
        self.total_ns as f64 / baseline.total_ns.max(1) as f64
    }

    /// Tail-latency lines for every batch phase and the whole batch.
    pub fn latency_summary(&self) -> String {
        format!(
            "pull     {}\nmaintain {}\npush     {}\nbatch    {}",
            self.pull_hist.summary_ms(),
            self.maintain_hist.summary_ms(),
            self.push_hist.summary_ms(),
            self.batch_hist.summary_ms()
        )
    }

    /// One-line summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} workers={:<2} batches={:<5} time={:>10.3}ms/batch miss={:>6.2}% spill={:>6.2}% ckpt_pause={:>6.2}%",
            self.engine,
            self.workers,
            self.batches,
            self.ns_per_batch() / 1e6,
            self.miss_rate() * 100.0,
            self.phases.spill_ns as f64 / self.total_ns.max(1) as f64 * 100.0,
            self.phases.ckpt_pause_ns as f64 / self.total_ns.max(1) as f64 * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_ns: Nanos) -> TrainReport {
        TrainReport {
            engine: "X".into(),
            workers: 4,
            batches: 10,
            total_ns,
            phases: PhaseBreakdown::default(),
            stats: StatsSnapshot::default(),
            avg_loss: None,
            checkpoints_taken: 0,
            committed_checkpoint: 0,
            failovers: 0,
            rewound_batches: 0,
            trace_per_ms: None,
            pull_hist: HistogramSnapshot::default(),
            maintain_hist: HistogramSnapshot::default(),
            push_hist: HistogramSnapshot::default(),
            batch_hist: HistogramSnapshot::default(),
        }
    }

    #[test]
    fn normalization() {
        let base = report(1_000);
        let slow = report(2_400);
        assert!((slow.normalized_to(&base) - 2.4).abs() < 1e-9);
        assert!((base.normalized_to(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_batch_and_secs() {
        let r = report(5_000_000_000);
        assert!((r.total_secs() - 5.0).abs() < 1e-9);
        assert!((r.ns_per_batch() - 5e8).abs() < 1e-3);
        assert!(r.summary().contains("X"));
    }
}
