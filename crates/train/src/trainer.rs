//! The synchronous-training discrete-event driver.
//!
//! Functionally, every batch pulls real weights, computes real (or
//! synthetic) gradients and pushes them back; in virtual time, the
//! driver composes the engine's charged costs with the GPU/network
//! models per the paper's batch anatomy (see crate docs).
//!
//! The trainer is backend-agnostic: it drives either an in-process
//! [`PsEngine`] (the historical path, still the default) or any
//! [`PsClient`] — including [`oe_net::RemotePs`] on the far side of a
//! fault-injected wire. Fallible backends surface failures through
//! [`SyncTrainer::try_run`]; when the client completes a failover
//! (promoting a checkpoint replica), the trainer charges the recovery
//! pause on the virtual clock and *rewinds* to the committed
//! checkpoint's successor batch, replaying deterministically — the
//! paper's §VI-E recovery story, end to end.

use crate::gpu::GpuModel;
use crate::model::{DeepFm, DeepFmConfig};
use crate::network::NetModel;
use crate::phases::PhaseBreakdown;
use crate::report::TrainReport;
use oe_core::engine::PsEngine;
use oe_core::init::init_weight;
use oe_core::{BatchId, CheckpointScheduler};
use oe_net::{Error as NetError, FailoverEvent, PsClient, PullTicket};
use oe_simdevice::clock::Nanos;
use oe_simdevice::{ContentionModel, Cost, VirtualClock};
use oe_telemetry::Histogram;
use oe_workload::trace::{TraceKind, TraceRecorder};
use oe_workload::{WorkloadGen, WorkloadSpec};

/// How gradients are produced.
pub enum TrainMode {
    /// Deterministic pseudo-gradients (cheap; used for performance
    /// studies where only the I/O pattern matters).
    Synthetic {
        /// Gradient magnitude.
        grad_scale: f32,
    },
    /// A real DeepFM with full backprop; labels come from a synthetic
    /// teacher keyed by the hottest field key (self-contained signal).
    DeepFm(DeepFmConfig),
}

/// Trainer configuration.
pub struct TrainerConfig {
    /// GPU workers (the paper's 4/8/16-GPU axis).
    pub workers: u32,
    /// Service threads on the PS node.
    pub ps_service_threads: u32,
    /// Cache-maintainer threads (pipelined engines).
    pub maintainer_threads: u32,
    /// Concurrent request streams each worker opens during a burst.
    pub streams_per_worker: u32,
    /// GPU compute model.
    pub gpu: GpuModel,
    /// Network model.
    pub net: NetModel,
    /// Gradient mode.
    pub mode: TrainMode,
    /// Checkpoint scheduler (virtual-time driven).
    pub ckpt: CheckpointScheduler,
    /// Pause per checkpoint for dumping the *dense* model from the GPU
    /// (TensorFlow's own checkpoint path in Table IV). Zero reproduces
    /// the paper's "Sparse Only" configuration.
    pub dense_ckpt_pause_ns: Nanos,
    /// Record a Fig. 2-style trace of request arrivals.
    pub record_trace: bool,
}

impl TrainerConfig {
    /// Paper-shaped defaults for `workers` GPUs, checkpointing disabled.
    pub fn paper(workers: u32) -> Self {
        Self {
            workers,
            ps_service_threads: 16,
            maintainer_threads: 8,
            streams_per_worker: 2,
            gpu: GpuModel::paper_default(),
            net: NetModel::paper_default(),
            mode: TrainMode::Synthetic { grad_scale: 0.01 },
            ckpt: CheckpointScheduler::disabled(),
            dense_ckpt_pause_ns: 0,
            record_trace: false,
        }
    }

    fn burst_streams(&self) -> u32 {
        (self.workers * self.streams_per_worker).max(1)
    }
}

/// The PS the trainer drives: in-process engine or fallible client.
/// Shared with the pipelined trainer (`crate::pipeline`), which drives
/// the same two backend kinds through the same dispatch.
#[derive(Clone, Copy)]
pub(crate) enum Backend<'a> {
    Engine(&'a dyn PsEngine),
    Client(&'a dyn PsClient),
}

impl<'a> Backend<'a> {
    pub(crate) fn name(&self) -> String {
        match self {
            Backend::Engine(e) => e.name().to_string(),
            Backend::Client(c) => c.backend_name(),
        }
    }

    pub(crate) fn dim(&self) -> usize {
        match self {
            Backend::Engine(e) => e.dim(),
            Backend::Client(c) => c.embed_dim(),
        }
    }

    pub(crate) fn pull(
        &self,
        keys: &[u64],
        b: BatchId,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), NetError> {
        match self {
            Backend::Engine(e) => {
                e.pull(keys, b, out, cost);
                Ok(())
            }
            Backend::Client(c) => c.pull_batch(keys, b, out, cost),
        }
    }

    /// Issue a pull without completing it — the pipelined prefetch path.
    /// In-process engines defer everything to completion; wire clients
    /// mint the idempotence token and encode the frame eagerly.
    pub(crate) fn pull_issue(&self, keys: &[u64], b: BatchId) -> Result<PullTicket, NetError> {
        match self {
            Backend::Engine(_) => Ok(PullTicket::deferred(keys.to_vec(), b)),
            Backend::Client(c) => c.pull_issue(keys, b),
        }
    }

    /// Complete an issued pull; byte-identical weights and cost to
    /// [`Backend::pull`] over the ticket's keys.
    pub(crate) fn pull_complete(
        &self,
        ticket: PullTicket,
        out: &mut Vec<f32>,
        cost: &mut Cost,
    ) -> Result<(), NetError> {
        match self {
            Backend::Engine(e) => {
                e.pull(ticket.keys(), ticket.batch(), out, cost);
                Ok(())
            }
            Backend::Client(c) => c.pull_complete(ticket, out, cost),
        }
    }

    pub(crate) fn end_pull_phase(
        &self,
        b: BatchId,
    ) -> Result<oe_core::engine::MaintenanceReport, NetError> {
        match self {
            Backend::Engine(e) => Ok(e.end_pull_phase(b)),
            Backend::Client(c) => c.flush_batch(b),
        }
    }

    pub(crate) fn push(
        &self,
        keys: &[u64],
        grads: &[f32],
        b: BatchId,
        cost: &mut Cost,
    ) -> Result<(), NetError> {
        match self {
            Backend::Engine(e) => {
                e.push(keys, grads, b, cost);
                Ok(())
            }
            Backend::Client(c) => c.push_batch(keys, grads, b, cost),
        }
    }

    /// Out-of-band apply for the async push queue: same state
    /// transition as [`Backend::push`], accounted off the critical
    /// path by engines that care. Clients fall back to a plain push.
    pub(crate) fn push_async(
        &self,
        keys: &[u64],
        grads: &[f32],
        b: BatchId,
        cost: &mut Cost,
    ) -> Result<(), NetError> {
        match self {
            Backend::Engine(e) => {
                e.push_async(keys, grads, b, cost);
                Ok(())
            }
            Backend::Client(c) => c.push_batch(keys, grads, b, cost),
        }
    }

    pub(crate) fn request_checkpoint(&self, b: BatchId) -> Result<Cost, NetError> {
        match self {
            Backend::Engine(e) => Ok(e.request_checkpoint(b)),
            Backend::Client(c) => c.checkpoint(b),
        }
    }

    pub(crate) fn stats(&self) -> Result<oe_core::stats::StatsSnapshot, NetError> {
        match self {
            Backend::Engine(e) => Ok(e.stats()),
            Backend::Client(c) => c.snapshot_stats(),
        }
    }

    pub(crate) fn committed_checkpoint(&self) -> Result<BatchId, NetError> {
        match self {
            Backend::Engine(e) => Ok(e.committed_checkpoint()),
            Backend::Client(c) => c.committed(),
        }
    }

    /// Costless diagnostic read of one key's weights (eval paths).
    pub(crate) fn read_weights(&self, key: u64) -> Option<Vec<f32>> {
        match self {
            Backend::Engine(e) => e.read_weights(key),
            Backend::Client(c) => c.weights_of(key).ok().flatten(),
        }
    }

    pub(crate) fn failover_resume(&self) -> Option<FailoverEvent> {
        match self {
            Backend::Engine(_) => None,
            Backend::Client(c) => c.failover_resume(),
        }
    }
}

/// Immutable per-run context shared by every batch (and, unchanged, by
/// every pipelined window — the contention arithmetic must be identical
/// for the staleness-0 bit-identity guarantee to hold).
pub(crate) struct BatchCtx {
    pub(crate) dim: usize,
    pub(crate) spec: WorkloadSpec,
    pub(crate) pull_model: ContentionModel,
    pub(crate) maint_model: ContentionModel,
    pub(crate) ckpt_model: ContentionModel,
}

impl BatchCtx {
    pub(crate) fn new(dim: usize, spec: WorkloadSpec, cfg: &TrainerConfig) -> Self {
        Self {
            dim,
            spec,
            pull_model: ContentionModel::new(cfg.ps_service_threads, cfg.burst_streams()),
            maint_model: ContentionModel::new(cfg.maintainer_threads, cfg.maintainer_threads),
            ckpt_model: ContentionModel::new(cfg.ps_service_threads, 1),
        }
    }
}

/// Mutable per-run accumulators.
pub(crate) struct RunAcc {
    pub(crate) phases: PhaseBreakdown,
    pub(crate) loss_sum: f64,
    pub(crate) loss_count: u64,
    pub(crate) ckpts_taken: u64,
    pub(crate) pull_hist: Histogram,
    pub(crate) maintain_hist: Histogram,
    pub(crate) push_hist: Histogram,
    pub(crate) batch_hist: Histogram,
}

impl RunAcc {
    pub(crate) fn new() -> Self {
        Self {
            phases: PhaseBreakdown::default(),
            loss_sum: 0.0,
            loss_count: 0,
            ckpts_taken: 0,
            pull_hist: Histogram::new(),
            maintain_hist: Histogram::new(),
            push_hist: Histogram::new(),
            batch_hist: Histogram::new(),
        }
    }
}

/// The synchronous trainer. Drives one engine over one workload.
pub struct SyncTrainer<'a> {
    backend: Backend<'a>,
    gen: &'a WorkloadGen,
    cfg: TrainerConfig,
    clock: VirtualClock,
    model: Option<DeepFm>,
    trace: TraceRecorder,
}

impl<'a> SyncTrainer<'a> {
    /// Build a trainer over an in-process engine.
    pub fn new(engine: &'a dyn PsEngine, gen: &'a WorkloadGen, cfg: TrainerConfig) -> Self {
        Self::build(Backend::Engine(engine), gen, cfg)
    }

    /// Build a trainer over any [`PsClient`] backend — an in-process
    /// `PsNode`, an `EngineClient` adapter, or a `RemotePs` with
    /// retries and failover. Use [`SyncTrainer::try_run`] with remote
    /// backends so failures surface as values.
    pub fn with_client(client: &'a dyn PsClient, gen: &'a WorkloadGen, cfg: TrainerConfig) -> Self {
        Self::build(Backend::Client(client), gen, cfg)
    }

    fn build(backend: Backend<'a>, gen: &'a WorkloadGen, cfg: TrainerConfig) -> Self {
        let model = match &cfg.mode {
            TrainMode::DeepFm(mcfg) => {
                assert_eq!(mcfg.dim, backend.dim(), "model dim must match PS");
                assert_eq!(
                    mcfg.fields,
                    gen.spec().fields,
                    "model fields must match workload"
                );
                Some(DeepFm::new(mcfg.clone()))
            }
            TrainMode::Synthetic { .. } => None,
        };
        Self {
            backend,
            gen,
            cfg,
            clock: VirtualClock::new(),
            model,
            trace: TraceRecorder::new(),
        }
    }

    /// Virtual clock (exposed for checkpoint-interval experiments).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Run `batches` batches starting at `start_batch` (1-based batch
    /// ids; pass the recovery resume point + 1 after a crash). Panics
    /// on backend failure — use [`SyncTrainer::try_run`] with remote
    /// backends.
    pub fn run(&mut self, start_batch: BatchId, batches: u64) -> TrainReport {
        self.try_run(start_batch, batches)
            .unwrap_or_else(|e| panic!("training backend failed: {e}"))
    }

    /// Fallible run. A backend error that the client resolved by
    /// failing over (see [`oe_net::FailoverEvent`]) charges the
    /// recovery time on the clock and rewinds to the committed
    /// checkpoint's successor; with deterministic (synthetic)
    /// gradients the replay is bit-identical to a fault-free run.
    /// Unresolved errors propagate.
    pub fn try_run(&mut self, start_batch: BatchId, batches: u64) -> Result<TrainReport, NetError> {
        self.try_run_with_hook(start_batch, batches, |_| {})
    }

    /// [`SyncTrainer::run`] with a per-batch hook. Panics on backend
    /// failure.
    pub fn run_with_hook(
        &mut self,
        start_batch: BatchId,
        batches: u64,
        hook: impl FnMut(BatchId),
    ) -> TrainReport {
        self.try_run_with_hook(start_batch, batches, hook)
            .unwrap_or_else(|e| panic!("training backend failed: {e}"))
    }

    /// [`SyncTrainer::try_run`] with a hook fired after every batch
    /// that completes successfully (receiving that batch's id). This
    /// is the driver seam for out-of-band control: a rebalancer forcing
    /// a shard migration mid-epoch, a test asserting invariants at a
    /// batch boundary, a progress bar. Batches replayed after a
    /// failover fire the hook again — the hook sees exactly the batches
    /// that counted.
    pub fn try_run_with_hook(
        &mut self,
        start_batch: BatchId,
        batches: u64,
        mut hook: impl FnMut(BatchId),
    ) -> Result<TrainReport, NetError> {
        let ctx = BatchCtx::new(self.backend.dim(), self.gen.spec().clone(), &self.cfg);

        let stats0 = self.backend.stats()?;
        let mut acc = RunAcc::new();
        let mut failovers = 0u64;
        let mut rewound_batches = 0u64;

        let end = start_batch + batches;
        let mut b = start_batch;
        while b < end {
            match self.run_batch(b, &ctx, &mut acc) {
                Ok(()) => {
                    hook(b);
                    b += 1;
                }
                Err(err) => match self.backend.failover_resume() {
                    Some(ev) => {
                        // The promoted standby's state ends at the
                        // committed checkpoint: everything after it —
                        // including the batch that died mid-flight —
                        // must replay. Recovery time is charged on the
                        // clock like any other pause; batches already
                        // *counted* stay counted (acc keeps their
                        // phases) and the replay adds on top, so
                        // total_ns reflects the true cost of failure.
                        let resume = ev.resume_batch + 1;
                        failovers += 1;
                        rewound_batches += b.saturating_sub(resume);
                        self.clock.advance(ev.recovery_ns);
                        b = resume;
                    }
                    None => return Err(err),
                },
            }
        }

        Ok(TrainReport {
            engine: self.backend.name(),
            workers: self.cfg.workers,
            batches,
            total_ns: self.clock.now(),
            phases: acc.phases,
            stats: self.backend.stats()?.delta_since(&stats0),
            avg_loss: if acc.loss_count > 0 {
                Some(acc.loss_sum / acc.loss_count as f64)
            } else {
                None
            },
            checkpoints_taken: acc.ckpts_taken,
            committed_checkpoint: self.backend.committed_checkpoint()?,
            failovers,
            rewound_batches,
            trace_per_ms: if self.cfg.record_trace {
                Some(self.trace.per_ms())
            } else {
                None
            },
            pull_hist: acc.pull_hist.snapshot(),
            maintain_hist: acc.maintain_hist.snapshot(),
            push_hist: acc.push_hist.snapshot(),
            batch_hist: acc.batch_hist.snapshot(),
        })
    }

    /// One full batch: pull burst, maintenance ∥ compute, gradients,
    /// push burst, optional checkpoint. Accumulates into `acc` only on
    /// success paths reached; a mid-batch error leaves the virtual
    /// clock where the batch started (the failover rewind replays the
    /// whole batch).
    fn run_batch(&mut self, b: BatchId, ctx: &BatchCtx, acc: &mut RunAcc) -> Result<(), NetError> {
        let backend = self.backend;
        let dim = ctx.dim;
        let mut batch_phase = PhaseBreakdown::default();

        // ---- pull burst ----
        // Engines that execute on parallel shard lanes have already
        // lane-merged their per-request cost (max-over-lanes for
        // parallelizable kinds, sum for the rest): the aggregate
        // passes through the ContentionModel unchanged, exactly like
        // a single-lane engine's.
        let mut pull_cost = Cost::new();
        let mut net_pull: Nanos = 0;
        let mut worker_data = Vec::with_capacity(self.cfg.workers as usize);
        for w in 0..self.cfg.workers {
            let wb = self.gen.worker_batch(b, w as usize);
            let mut weights = Vec::new();
            backend.pull(&wb.unique_keys, b, &mut weights, &mut pull_cost)?;
            net_pull = net_pull.max(self.cfg.net.pull_ns(wb.unique_keys.len(), dim));
            worker_data.push((wb, weights));
        }
        batch_phase.pull_ns = ctx.pull_model.burst_ns(&pull_cost) + net_pull;
        if self.cfg.record_trace {
            let total: u64 = worker_data
                .iter()
                .map(|(wb, _)| wb.unique_keys.len() as u64)
                .sum();
            self.trace.record(self.clock.now(), TraceKind::Pull, total);
        }

        // ---- deferred maintenance ∥ GPU compute ----
        let m = backend.end_pull_phase(b)?;
        batch_phase.maintain_ns = ctx.maint_model.burst_ns(&m.cost);
        batch_phase.compute_ns = self.cfg.gpu.compute_ns(
            ctx.spec.batch_size / self.cfg.workers.max(1) as usize,
            ctx.spec.fields,
            dim,
        );
        batch_phase.spill_ns = batch_phase
            .maintain_ns
            .saturating_sub(batch_phase.compute_ns);

        // ---- gradient computation (functional) + push burst ----
        let mut push_cost = Cost::new();
        let mut net_push: Nanos = 0;
        for (wb, weights) in &worker_data {
            let keys = &wb.unique_keys;
            let grads = worker_grads(
                &self.cfg.mode,
                &mut self.model,
                wb,
                weights,
                b,
                dim,
                ctx.spec.fields,
                acc,
            );
            backend.push(keys, &grads, b, &mut push_cost)?;
            net_push = net_push.max(self.cfg.net.push_ns(keys.len(), dim));
        }
        if let Some(model) = self.model.as_mut() {
            model.step_dense(); // synchronous allreduce equivalent
        }
        batch_phase.push_ns = ctx.pull_model.burst_ns(&push_cost) + net_push;
        if self.cfg.record_trace {
            let total: u64 = worker_data
                .iter()
                .map(|(wb, _)| wb.unique_keys.len() as u64)
                .sum();
            self.trace.record(
                self.clock.now() + batch_phase.pull_ns + batch_phase.compute_ns,
                TraceKind::Update,
                total,
            );
        }

        self.clock.advance(
            batch_phase.pull_ns
                + batch_phase.compute_ns
                + batch_phase.spill_ns
                + batch_phase.push_ns,
        );

        // ---- checkpoint (synchronous, at the batch boundary) ----
        if let Some(cp) = self.cfg.ckpt.due(self.clock.now(), b) {
            let inline = backend.request_checkpoint(cp)?;
            let mut pause = ctx.ckpt_model.burst_ns(&inline);
            pause += self.cfg.dense_ckpt_pause_ns;
            batch_phase.ckpt_pause_ns = pause;
            self.clock.advance(pause);
            acc.ckpts_taken += 1;
        }

        acc.pull_hist.record(batch_phase.pull_ns);
        acc.maintain_hist.record(batch_phase.maintain_ns);
        acc.push_hist.record(batch_phase.push_ns);
        acc.batch_hist.record(batch_phase.total_ns());
        acc.phases.accumulate(&batch_phase);
        Ok(())
    }
}

/// Synthetic teacher label: depends on the hottest key of the input
/// so the DeepFM has learnable signal.
pub(crate) fn teacher_label(keys: &[u64], batch: u64, input: usize) -> f32 {
    let hot = keys.iter().copied().min().unwrap_or(0);
    let h = oe_core::init::splitmix64(hot.wrapping_mul(0x9E37) ^ 0xF00D);
    let noise = oe_core::init::splitmix64(batch ^ (input as u64) << 20 ^ hot);
    // ~70% determined by the key, 30% noise.
    let p = if h & 1 == 0 { 0.8 } else { 0.2 };
    if ((noise >> 16) as f64 / (1u64 << 48) as f64) < p {
        1.0
    } else {
        0.0
    }
}

/// One worker's gradient burst for batch `b` — shared verbatim by the
/// synchronous and pipelined trainers so both paths produce identical
/// gradients (and loss accounting) from identical pulled weights.
#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_grads(
    mode: &TrainMode,
    model: &mut Option<DeepFm>,
    wb: &oe_workload::Batch,
    weights: &[f32],
    b: BatchId,
    dim: usize,
    fields: usize,
    acc: &mut RunAcc,
) -> Vec<f32> {
    let keys = &wb.unique_keys;
    let mut grads = vec![0.0f32; keys.len() * dim];
    match mode {
        TrainMode::Synthetic { grad_scale } => {
            let scale = *grad_scale;
            for (i, &k) in keys.iter().enumerate() {
                for d in 0..dim {
                    grads[i * dim + d] = init_weight(b ^ 0x5A5A, k, d, scale);
                }
            }
        }
        TrainMode::DeepFm(_) => {
            let model = model.as_mut().expect("model built");
            let mut emb = vec![0.0f32; fields * dim];
            for (ii, input) in wb.input_keys.iter().enumerate() {
                for (f, k) in input.iter().enumerate() {
                    let idx = keys.binary_search(k).expect("key pulled");
                    emb[f * dim..(f + 1) * dim]
                        .copy_from_slice(&weights[idx * dim..(idx + 1) * dim]);
                }
                let label = teacher_label(input, b, ii);
                let (loss, d_emb) = model.train_example(&emb, &[], label);
                acc.loss_sum += loss as f64;
                acc.loss_count += 1;
                for (f, k) in input.iter().enumerate() {
                    let idx = keys.binary_search(k).expect("key pulled");
                    for d in 0..dim {
                        grads[idx * dim + d] += d_emb[f * dim + d];
                    }
                }
            }
        }
    }
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use oe_core::{NodeConfig, OptimizerKind, PsNode};
    use oe_workload::{SkewModel, WorkloadSpec};

    fn small_spec(workers: usize) -> WorkloadSpec {
        WorkloadSpec {
            num_keys: 2_000,
            fields: 4,
            batch_size: 64,
            workers,
            skew: SkewModel::paper_fit(),
            seed: 5,
            drift_keys_per_batch: 0,
        }
    }

    fn node() -> PsNode {
        let mut cfg = NodeConfig::small(8);
        cfg.optimizer = OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        };
        cfg.cache_bytes = 400 * cfg.bytes_per_cached_entry();
        PsNode::new(cfg)
    }

    #[test]
    fn synthetic_run_produces_consistent_report() {
        let n = node();
        let gen = WorkloadGen::new(small_spec(2));
        let mut cfg = TrainerConfig::paper(2);
        cfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
        let mut t = SyncTrainer::new(&n, &gen, cfg);
        let r = t.run(1, 10);
        assert_eq!(r.batches, 10);
        assert!(r.total_ns > 0);
        assert_eq!(
            r.stats.pulls, r.stats.pushes,
            "every pulled key is pushed back"
        );
        assert!(r.phases.compute_ns > 0);
        assert!(r.avg_loss.is_none());
        assert_eq!(r.failovers, 0);
        assert_eq!(r.rewound_batches, 0);
        // Every phase histogram carries one sample per batch.
        for (name, h) in [
            ("pull", &r.pull_hist),
            ("maintain", &r.maintain_hist),
            ("push", &r.push_hist),
            ("batch", &r.batch_hist),
        ] {
            assert_eq!(h.count(), 10, "{name} histogram");
        }
        assert!(r.batch_hist.p99() >= r.pull_hist.p50(), "batch ⊇ pull");
        assert!(r.latency_summary().contains("maintain"));
    }

    #[test]
    fn deterministic_virtual_time() {
        let run = || {
            let n = node();
            let gen = WorkloadGen::new(small_spec(2));
            let mut t = SyncTrainer::new(&n, &gen, TrainerConfig::paper(2));
            t.run(1, 8).total_ns
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn client_backend_matches_engine_backend() {
        let report_for = |client: bool| {
            let n = node();
            let gen = WorkloadGen::new(small_spec(2));
            let cfg = TrainerConfig::paper(2);
            let mut t = if client {
                SyncTrainer::with_client(&n, &gen, cfg)
            } else {
                SyncTrainer::new(&n, &gen, cfg)
            };
            let r = t.try_run(1, 8).expect("in-process backends are infallible");
            (r.total_ns, r.stats.pulls, r.stats.pushes)
        };
        assert_eq!(report_for(false), report_for(true));
    }

    #[test]
    fn deepfm_training_reduces_loss() {
        let n = node();
        let gen = WorkloadGen::new(small_spec(1));
        let mut cfg = TrainerConfig::paper(1);
        cfg.mode = TrainMode::DeepFm(DeepFmConfig {
            dim: 8,
            fields: 4,
            dense_features: 0,
            hidden: vec![16],
            dense_lr: 0.02,
            seed: 3,
        });
        let mut t = SyncTrainer::new(&n, &gen, cfg);
        let early = t.run(1, 15).avg_loss.unwrap();
        let late = t.run(16, 15).avg_loss.unwrap();
        assert!(
            late < early,
            "loss should fall with training: {early} → {late}"
        );
        // Better than chance (ln 2 ≈ 0.693) by the second block.
        assert!(late < 0.67, "late loss {late}");
    }

    #[test]
    fn more_workers_less_total_time() {
        let time_for = |workers: usize| {
            let n = node();
            let gen = WorkloadGen::new(small_spec(workers));
            let mut t = SyncTrainer::new(&n, &gen, TrainerConfig::paper(workers as u32));
            t.run(1, 10).total_ns
        };
        let w1 = time_for(1);
        let w4 = time_for(4);
        assert!(w4 < w1, "data parallel speedup: {w1} vs {w4}");
    }

    #[test]
    fn checkpointing_engine_commits_during_training() {
        let n = node();
        let gen = WorkloadGen::new(small_spec(2));
        let mut cfg = TrainerConfig::paper(2);
        cfg.ckpt = CheckpointScheduler::every(1); // due at every boundary
        let mut t = SyncTrainer::new(&n, &gen, cfg);
        let r = t.run(1, 6);
        assert!(r.checkpoints_taken >= 5);
        assert!(
            r.committed_checkpoint >= 4,
            "commits ride maintenance: {}",
            r.committed_checkpoint
        );
    }

    #[test]
    fn trace_records_pull_update_pairs() {
        let n = node();
        let gen = WorkloadGen::new(small_spec(2));
        let mut cfg = TrainerConfig::paper(2);
        cfg.record_trace = true;
        let mut t = SyncTrainer::new(&n, &gen, cfg);
        let r = t.run(1, 5);
        let trace = r.trace_per_ms.expect("trace recorded");
        let pulls: u64 = trace.iter().map(|b| b.pulls).sum();
        let updates: u64 = trace.iter().map(|b| b.updates).sum();
        assert_eq!(pulls, updates, "pull/update pairs");
        assert!(pulls > 0);
    }
}
