//! Trace analysis: Table II statistics, Fig. 10 rank-frequency curves,
//! and Che's approximation for LRU miss rates.

use serde::Serialize;

/// Fraction of total accesses landing on the hottest `frac` of keys,
/// measured from empirical per-key counts (Table II methodology).
pub fn top_share_empirical(counts: &[u64], frac: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = counts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((counts.len() as f64 * frac).round() as usize).clamp(1, counts.len());
    let top: u64 = sorted[..k].iter().sum();
    top as f64 / total as f64
}

/// Rank-frequency series for Fig. 10: (rank, accesses) sorted descending,
/// downsampled to at most `points` rows for plotting.
#[derive(Debug, Clone, Serialize)]
pub struct RankFrequency {
    /// (rank, access count) pairs, rank ascending.
    pub points: Vec<(u64, u64)>,
    /// Total accesses.
    pub total: u64,
}

impl RankFrequency {
    /// Build from per-key counts.
    pub fn from_counts(counts: &[u64], points: usize) -> Self {
        let mut sorted: Vec<u64> = counts.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total = sorted.iter().sum();
        let n = sorted.len().max(1);
        let step = (n / points.max(1)).max(1);
        let pts = (0..n)
            .step_by(step)
            .map(|r| (r as u64, sorted[r]))
            .collect();
        Self { points: pts, total }
    }

    /// Least-squares fit of log(freq) = log(A) − λ·(rank/n) over the
    /// non-zero head — the exponential fit the paper draws in Fig. 10.
    /// Returns (A, λ_normalized).
    pub fn fit_exponential(&self, n_keys: u64) -> (f64, f64) {
        let pts: Vec<(f64, f64)> = self
            .points
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(r, c)| (r as f64 / n_keys as f64, (c as f64).ln()))
            .collect();
        if pts.len() < 2 {
            return (0.0, 0.0);
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        (intercept.exp(), -slope)
    }
}

/// Che's approximation for the miss rate of an LRU cache of `cache_size`
/// entries under independent-reference accesses with per-key
/// probabilities `probs` (need not be normalized).
///
/// Solves `Σᵢ (1 − e^{−pᵢ·T}) = cache_size` for the characteristic time
/// `T` by bisection, then `hit(i) = 1 − e^{−pᵢ·T}`; overall miss rate is
/// the access-weighted complement. The standard analytic tool for
/// cache-size sweeps (Fig. 8) without running a simulation.
pub fn che_miss_rate(probs: &[f64], cache_size: usize) -> f64 {
    let total: f64 = probs.iter().sum();
    if total <= 0.0 || probs.is_empty() {
        return 0.0;
    }
    if cache_size >= probs.len() {
        return 0.0;
    }
    let p: Vec<f64> = probs.iter().map(|&x| x / total).collect();
    let occupancy = |t: f64| -> f64 { p.iter().map(|&pi| 1.0 - (-pi * t).exp()).sum() };
    // Bisection for T on a generous bracket.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while occupancy(hi) < cache_size as f64 {
        hi *= 2.0;
        if hi > 1e18 {
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if occupancy(mid) < cache_size as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);
    let hit_rate: f64 = p.iter().map(|&pi| pi * (1.0 - (-pi * t).exp())).sum();
    (1.0 - hit_rate).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadGen, WorkloadSpec};
    use crate::skew::SkewModel;

    #[test]
    fn top_share_basic() {
        // 4 keys: counts 70, 20, 9, 1.
        let counts = [9, 70, 1, 20];
        assert!((top_share_empirical(&counts, 0.25) - 0.70).abs() < 1e-12);
        assert!((top_share_empirical(&counts, 0.5) - 0.90).abs() < 1e-12);
        assert!((top_share_empirical(&counts, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generated_workload_matches_table2_shape() {
        let mut spec = WorkloadSpec::small();
        spec.num_keys = 200_000;
        spec.batch_size = 512;
        let g = WorkloadGen::new(spec);
        let counts = g.access_counts(60);
        // With finite sampling the measured share of the top 1% should be
        // near the analytic 95.7%.
        let s = top_share_empirical(&counts, 0.01);
        assert!((s - 0.957).abs() < 0.03, "top-1% share = {s}");
    }

    #[test]
    fn rank_frequency_is_descending_and_fits() {
        let mut spec = WorkloadSpec::small();
        spec.num_keys = 50_000;
        spec.skew = SkewModel::exponential(300.0);
        let g = WorkloadGen::new(spec);
        let counts = g.access_counts(80);
        let rf = RankFrequency::from_counts(&counts, 200);
        for w in rf.points.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending");
        }
        let (_a, lambda) = rf.fit_exponential(50_000);
        // The fitted decay constant is positive and within an order of
        // magnitude of the generator's λ (tail zeros bias it down).
        assert!(lambda > 50.0, "λ = {lambda}");
    }

    #[test]
    fn che_extremes() {
        let probs = vec![1.0; 100];
        assert_eq!(che_miss_rate(&probs, 100), 0.0);
        assert!(che_miss_rate(&probs, 0) > 0.99);
        // Uniform: miss rate ≈ 1 - cache/n.
        let m = che_miss_rate(&probs, 50);
        assert!((m - 0.5).abs() < 0.1, "uniform m={m}");
    }

    #[test]
    fn che_skew_lowers_miss_rate() {
        let n = 10_000usize;
        let uni = vec![1.0; n];
        let skewed: Vec<f64> = (0..n).map(|i| (-(i as f64) / 200.0).exp() + 1e-9).collect();
        let c = 500;
        assert!(che_miss_rate(&skewed, c) < che_miss_rate(&uni, c) / 2.0);
    }

    #[test]
    fn che_monotone_in_cache_size() {
        let probs: Vec<f64> = (0..5000).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut prev = 1.0;
        for c in [10, 50, 250, 1000, 4000] {
            let m = che_miss_rate(&probs, c);
            assert!(m <= prev + 1e-9, "miss rate decreasing in cache size");
            prev = m;
        }
    }
}
