//! Synthetic Criteo-like CTR dataset (stand-in for the Criteo Kaggle
//! display-advertising dataset used in the paper's Fig. 15).
//!
//! Structure mirrors the real dataset: 13 dense (integer-count) features
//! and 26 categorical fields of wildly varying cardinality (a few tens
//! to millions). Labels are drawn from a hidden ground-truth logistic
//! model over per-key latent effects, so a DLRM trained on the samples
//! has real signal to learn — integration tests assert logloss drops
//! well below the chance baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Number of dense features (as in Criteo).
pub const DENSE_FEATURES: usize = 13;
/// Number of categorical fields (as in Criteo).
pub const CAT_FIELDS: usize = 26;

/// Scaled-down per-field cardinalities echoing the real dataset's mix of
/// tiny and huge vocabularies.
pub const FIELD_CARDINALITIES: [u64; CAT_FIELDS] = [
    1200, 550, 150_000, 80_000, 300, 20, 11_000, 600, 3, 40_000, 5_000, 120_000, 3_000, 26, 9_000,
    60_000, 10, 4_000, 2_000, 4, 100_000, 15, 15, 35_000, 70, 48_000,
];

/// One training sample.
#[derive(Debug, Clone, Serialize)]
pub struct CriteoSample {
    /// Dense features, already log-normalized to ≈ [0, 1].
    pub dense: Vec<f32>,
    /// One key per categorical field, globally offset (field `f`'s keys
    /// live in a disjoint range), directly usable as PS keys.
    pub cat_keys: Vec<u64>,
    /// Click label.
    pub label: f32,
}

/// Deterministic synthetic-Criteo sampler.
pub struct CriteoSynth {
    seed: u64,
    field_offsets: [u64; CAT_FIELDS],
    total_keys: u64,
    skew_lambda: f64,
}

impl CriteoSynth {
    /// Create a sampler. Within each field, key popularity follows a
    /// truncated exponential (`skew_lambda` over normalized rank).
    pub fn new(seed: u64) -> Self {
        let mut offsets = [0u64; CAT_FIELDS];
        let mut acc = 0u64;
        for (i, &c) in FIELD_CARDINALITIES.iter().enumerate() {
            offsets[i] = acc;
            acc += c;
        }
        Self {
            seed,
            field_offsets: offsets,
            total_keys: acc,
            skew_lambda: 200.0,
        }
    }

    /// Total distinct keys across all fields.
    pub fn total_keys(&self) -> u64 {
        self.total_keys
    }

    /// The global key range of field `f`.
    pub fn field_range(&self, f: usize) -> std::ops::Range<u64> {
        let start = self.field_offsets[f];
        start..start + FIELD_CARDINALITIES[f]
    }

    /// Hidden ground-truth effect of a key on the click logit.
    fn key_effect(&self, key: u64) -> f32 {
        let h = oe_hash(self.seed ^ 0xABCD, key);
        // Effects in (-0.6, 0.6).
        ((h >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 1.2
    }

    fn sample_field_key<R: Rng + ?Sized>(&self, f: usize, rng: &mut R) -> u64 {
        let card = FIELD_CARDINALITIES[f];
        let u: f64 = rng.gen();
        let l = self.skew_lambda;
        let x = -(1.0 - u * (1.0 - (-l).exp())).ln() / l;
        let rank = ((x * card as f64) as u64).min(card - 1);
        // Scatter ranks so hot keys are not clustered at range start.
        self.field_offsets[f] + scatter(rank, card, self.seed ^ f as u64)
    }

    /// Draw sample `idx` (pure function of (seed, idx)).
    pub fn sample(&self, idx: u64) -> CriteoSample {
        let mut rng = StdRng::seed_from_u64(self.seed ^ idx.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let dense: Vec<f32> = (0..DENSE_FEATURES)
            .map(|_| {
                // Log-normal-ish counts squashed to ~[0,1].
                let raw: f32 = rng.gen::<f32>() * rng.gen::<f32>() * 100.0;
                (1.0 + raw).ln() / 5.0
            })
            .collect();
        let cat_keys: Vec<u64> = (0..CAT_FIELDS)
            .map(|f| self.sample_field_key(f, &mut rng))
            .collect();
        // Ground-truth logit: key effects + a dense term + noise.
        let mut logit: f32 = -1.0; // base CTR below 50%
        for &k in &cat_keys {
            logit += self.key_effect(k);
        }
        logit += dense.iter().sum::<f32>() * 0.15;
        logit += (rng.gen::<f32>() - 0.5) * 0.4;
        let p = 1.0 / (1.0 + (-logit).exp());
        let label = if rng.gen::<f32>() < p { 1.0 } else { 0.0 };
        CriteoSample {
            dense,
            cat_keys,
            label,
        }
    }

    /// Draw a contiguous mini-batch.
    pub fn batch(&self, start_idx: u64, n: usize) -> Vec<CriteoSample> {
        (0..n as u64).map(|i| self.sample(start_idx + i)).collect()
    }
}

fn oe_hash(seed: u64, key: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// A cheap bijective-enough scatter of ranks within a field (affine map
/// with an odd multiplier modulo the cardinality is injective when the
/// multiplier is coprime with `card`; we retry until coprime).
fn scatter(rank: u64, card: u64, seed: u64) -> u64 {
    let mut m = (oe_hash(seed, 0x5EED) | 1) % card.max(1);
    if m == 0 {
        m = 1;
    }
    while gcd(m, card) != 1 {
        m += 2;
        if m >= card {
            m = 1;
            break;
        }
    }
    (rank.wrapping_mul(m).wrapping_add(oe_hash(seed, 1) % card)) % card
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_samples() {
        let s = CriteoSynth::new(7);
        let a = s.sample(5);
        let b = s.sample(5);
        assert_eq!(a.cat_keys, b.cat_keys);
        assert_eq!(a.dense, b.dense);
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn keys_stay_in_field_ranges() {
        let s = CriteoSynth::new(1);
        for idx in 0..200 {
            let smp = s.sample(idx);
            assert_eq!(smp.cat_keys.len(), CAT_FIELDS);
            for (f, &k) in smp.cat_keys.iter().enumerate() {
                assert!(s.field_range(f).contains(&k), "field {f} key {k}");
            }
            assert_eq!(smp.dense.len(), DENSE_FEATURES);
            assert!(smp.label == 0.0 || smp.label == 1.0);
        }
    }

    #[test]
    fn fields_are_disjoint_and_cover() {
        let s = CriteoSynth::new(1);
        let mut end = 0;
        for f in 0..CAT_FIELDS {
            let r = s.field_range(f);
            assert_eq!(r.start, end);
            end = r.end;
        }
        assert_eq!(end, s.total_keys());
    }

    #[test]
    fn labels_have_signal_and_balance() {
        let s = CriteoSynth::new(3);
        let n = 4000;
        let pos: f32 = (0..n).map(|i| s.sample(i).label).sum();
        let ctr = pos / n as f32;
        assert!((0.05..0.8).contains(&ctr), "ctr = {ctr}");
        // Signal check: conditional CTR differs between samples containing
        // a strongly positive key vs a strongly negative one.
        let mut hi = (0.0f32, 0.0f32);
        let mut lo = (0.0f32, 0.0f32);
        for i in 0..n {
            let smp = s.sample(i);
            let effect: f32 = smp.cat_keys.iter().map(|&k| s.key_effect(k)).sum();
            if effect > 0.5 {
                hi = (hi.0 + smp.label, hi.1 + 1.0);
            } else if effect < -0.5 {
                lo = (lo.0 + smp.label, lo.1 + 1.0);
            }
        }
        if hi.1 > 20.0 && lo.1 > 20.0 {
            assert!(hi.0 / hi.1 > lo.0 / lo.1, "keys carry signal");
        }
    }

    #[test]
    fn field_skew_reuses_hot_keys() {
        let s = CriteoSynth::new(9);
        let mut distinct = HashSet::new();
        let refs = 2000;
        for i in 0..refs {
            distinct.insert(s.sample(i).cat_keys[2]); // a 150k-card field
        }
        // With skew, far fewer distinct keys than references.
        assert!(
            (distinct.len() as f64) < refs as f64 * 0.8,
            "distinct {} of {refs}",
            distinct.len()
        );
    }
}
