//! Synchronous-training batch generation.
//!
//! A global batch of `batch_size` training inputs is split evenly across
//! `workers` GPU workers (data parallelism); each input references
//! `fields` sparse features sampled from the skew model. Workers dedup
//! their key lists before pulling (standard practice; the PS sees one
//! pull + one update per distinct key per worker per batch — the paired
//! pattern of Fig. 2).

use crate::skew::SkewModel;
use serde::Serialize;

/// Embedding key.
pub type Key = u64;

/// A seeded uniform-f64 stream (splitmix64). The batch generator owns
/// its randomness outright so a workload is a pure function of
/// `(spec, batch, worker)` — identical across `rand` versions, stub
/// implementations, and platforms. Tests that assert on hit rates or
/// key overlap can therefore pin tight bounds.
#[derive(Debug, Clone)]
pub struct UniformStream {
    state: u64,
}

impl UniformStream {
    /// Stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform f64 in [0, 1) (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Workload description.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadSpec {
    /// Total distinct embedding keys in the model.
    pub num_keys: u64,
    /// Sparse features per training input.
    pub fields: usize,
    /// Global batch size (inputs per synchronous step).
    pub batch_size: usize,
    /// Number of GPU workers sharing the batch.
    pub workers: usize,
    /// Access-skew model.
    #[serde(skip)]
    pub skew: SkewModel,
    /// RNG seed: the whole workload is a pure function of (spec, batch).
    pub seed: u64,
    /// Popularity drift: the rank→key mapping rotates by this many keys
    /// per batch, modelling item churn over a long trace (new items
    /// trend, old ones fade — the paper's 147-day production trace).
    /// 0 = stationary (default).
    pub drift_keys_per_batch: u64,
}

impl WorkloadSpec {
    /// A small default spec for tests.
    pub fn small() -> Self {
        Self {
            num_keys: 10_000,
            fields: 8,
            batch_size: 128,
            workers: 2,
            skew: SkewModel::paper_fit(),
            seed: 1234,
            drift_keys_per_batch: 0,
        }
    }

    /// Keys referenced per worker per batch (before dedup).
    pub fn keys_per_worker(&self) -> usize {
        (self.batch_size / self.workers.max(1)) * self.fields
    }
}

/// One worker's share of a global batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch index this belongs to.
    pub batch_idx: u64,
    /// Worker index.
    pub worker: usize,
    /// Per-input key lists (`inputs × fields`), for model training.
    pub input_keys: Vec<Vec<Key>>,
    /// Deduplicated, sorted keys this worker pulls/pushes.
    pub unique_keys: Vec<Key>,
}

impl Batch {
    /// Number of inputs in this worker batch.
    pub fn inputs(&self) -> usize {
        self.input_keys.len()
    }

    /// Raw (with duplicates) key references.
    pub fn total_refs(&self) -> usize {
        self.input_keys.iter().map(|v| v.len()).sum()
    }
}

/// Deterministic batch generator.
pub struct WorkloadGen {
    spec: WorkloadSpec,
}

impl WorkloadGen {
    /// Build a generator for `spec`.
    pub fn new(spec: WorkloadSpec) -> Self {
        assert!(spec.num_keys > 0 && spec.fields > 0 && spec.batch_size > 0);
        assert!(spec.workers > 0 && spec.workers <= spec.batch_size);
        Self { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generate worker `w`'s share of global batch `batch_idx`.
    /// Deterministic: the same (spec, batch, worker) always yields the
    /// same batch, so independent engines replay identical workloads.
    pub fn worker_batch(&self, batch_idx: u64, worker: usize) -> Batch {
        assert!(worker < self.spec.workers);
        let mut stream = UniformStream::new(
            self.spec.seed ^ batch_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (worker as u64) << 48,
        );
        let inputs = self.spec.batch_size / self.spec.workers;
        // Popularity drift: rotate the rank→key mapping over time so the
        // hot set slides through the key space.
        let offset = (batch_idx * self.spec.drift_keys_per_batch) % self.spec.num_keys;
        let mut input_keys = Vec::with_capacity(inputs);
        for _ in 0..inputs {
            let keys: Vec<Key> = (0..self.spec.fields)
                .map(|_| {
                    let pick = stream.next_f64();
                    let u = stream.next_f64();
                    (self
                        .spec
                        .skew
                        .rank_from_uniforms(pick, u, self.spec.num_keys)
                        + offset)
                        % self.spec.num_keys
                })
                .collect();
            input_keys.push(keys);
        }
        let mut unique_keys: Vec<Key> = input_keys.iter().flatten().copied().collect();
        unique_keys.sort_unstable();
        unique_keys.dedup();
        Batch {
            batch_idx,
            worker,
            input_keys,
            unique_keys,
        }
    }

    /// All workers' shares of a global batch.
    pub fn global_batch(&self, batch_idx: u64) -> Vec<Batch> {
        (0..self.spec.workers)
            .map(|w| self.worker_batch(batch_idx, w))
            .collect()
    }

    /// Stream raw key references over `batches` batches (for access-
    /// frequency analysis, Table II / Fig. 10).
    pub fn access_counts(&self, batches: u64) -> Vec<u64> {
        let mut counts = vec![0u64; self.spec.num_keys as usize];
        for b in 0..batches {
            for w in 0..self.spec.workers {
                let batch = self.worker_batch(b, w);
                for keys in &batch.input_keys {
                    for &k in keys {
                        counts[k as usize] += 1;
                    }
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stream_matches_splitmix64_reference() {
        // Published splitmix64 test vectors for seed 0 — the key stream
        // is pinned to these forever, independent of any rand crate.
        let mut s = UniformStream::new(0);
        assert_eq!(s.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(s.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s.next_u64(), 0x06C4_5D18_8009_454F);
        let mut s = UniformStream::new(0);
        for _ in 0..10_000 {
            let u = s.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn deterministic_replay() {
        let g = WorkloadGen::new(WorkloadSpec::small());
        let a = g.worker_batch(3, 1);
        let b = g.worker_batch(3, 1);
        assert_eq!(a.input_keys, b.input_keys);
        assert_eq!(a.unique_keys, b.unique_keys);
        let c = g.worker_batch(4, 1);
        assert_ne!(a.input_keys, c.input_keys);
    }

    #[test]
    fn workers_split_the_batch() {
        let spec = WorkloadSpec::small();
        let g = WorkloadGen::new(spec.clone());
        let batches = g.global_batch(0);
        assert_eq!(batches.len(), spec.workers);
        let total_inputs: usize = batches.iter().map(|b| b.inputs()).sum();
        assert_eq!(total_inputs, spec.batch_size);
        for b in &batches {
            assert_eq!(b.total_refs(), b.inputs() * spec.fields);
        }
    }

    #[test]
    fn unique_keys_sorted_deduped_in_range() {
        let g = WorkloadGen::new(WorkloadSpec::small());
        let b = g.worker_batch(0, 0);
        let mut sorted = b.unique_keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(b.unique_keys, sorted);
        assert!(b.unique_keys.iter().all(|&k| k < 10_000));
        assert!(!b.unique_keys.is_empty());
    }

    #[test]
    fn hot_keys_dominate_counts() {
        let mut spec = WorkloadSpec::small();
        spec.num_keys = 100_000;
        let g = WorkloadGen::new(spec);
        let counts = g.access_counts(20);
        let total: u64 = counts.iter().sum();
        let top: u64 = counts.iter().take(1000).sum(); // hottest 1%
        assert!(
            top as f64 / total as f64 > 0.90,
            "top 1% share = {}",
            top as f64 / total as f64
        );
    }

    #[test]
    fn drift_rotates_the_hot_set() {
        let mut spec = WorkloadSpec::small();
        spec.num_keys = 50_000;
        spec.drift_keys_per_batch = 5;
        let g = WorkloadGen::new(spec);
        let hot = |b: u64| -> std::collections::HashSet<u64> {
            g.worker_batch(b, 0).unique_keys.iter().copied().collect()
        };
        let early = hot(0);
        let near = hot(1);
        let far = hot(4000); // hot set has moved 20k keys away
        let overlap = |a: &std::collections::HashSet<u64>, b: &std::collections::HashSet<u64>| {
            a.intersection(b).count() as f64 / a.len() as f64
        };
        assert!(
            overlap(&early, &near) > overlap(&early, &far),
            "hot-set overlap decays with drift distance: near {:.2} far {:.2}",
            overlap(&early, &near),
            overlap(&early, &far)
        );
        assert!(overlap(&early, &far) < 0.3);
    }

    #[test]
    fn zero_drift_is_stationary() {
        let spec = WorkloadSpec::small();
        let g = WorkloadGen::new(spec);
        // The hottest key (rank 0) appears in every batch regardless of
        // the batch index.
        for b in [0u64, 100, 10_000] {
            let keys = g.worker_batch(b, 0).unique_keys;
            assert!(keys.contains(&0), "batch {b} touches rank-0");
        }
    }

    #[test]
    #[should_panic]
    fn worker_out_of_range_panics() {
        let g = WorkloadGen::new(WorkloadSpec::small());
        g.worker_batch(0, 99);
    }
}
