//! # oe-workload
//!
//! Workload generation and analysis for the OpenEmbedding reproduction.
//!
//! The paper's evaluation workload is a production trace (2.1 B embedding
//! entries, 147 days, a top retailer) that is not available. Everything
//! the paper's results depend on, however, is the *access-frequency
//! distribution*, which the paper publishes: Table II (top 0.05 % of
//! entries receive 85.7 % of accesses, top 0.1 % → 89.5 %, top 1 % →
//! 95.7 %) and Fig. 10 (exponential-decay rank-frequency fit).
//!
//! [`skew::SkewModel::paper_fit`] is a two-exponential + uniform mixture
//! fitted to those three published points (max error < 0.01 %), with
//! [`skew::SkewModel::scaled`] producing the paper's "more skew" / "less
//! skew" variants (Fig. 10/11). The [`generator`] samples synchronous
//! training batches from the model; [`trace`] reproduces the Fig. 2
//! burst analysis; [`analyze`] measures empirical top-k shares and
//! provides Che's approximation for LRU miss rates; [`criteo`] is the
//! synthetic stand-in for the Criteo Kaggle dataset (Fig. 15).

pub mod analyze;
pub mod criteo;
pub mod generator;
pub mod lookahead;
pub mod skew;
pub mod storm;
pub mod trace;

pub use analyze::{che_miss_rate, top_share_empirical, RankFrequency};
pub use criteo::{CriteoSample, CriteoSynth};
pub use generator::{Batch, UniformStream, WorkloadGen, WorkloadSpec};
pub use lookahead::LookaheadGen;
pub use skew::SkewModel;
pub use storm::{StormGen, StormSpec};
pub use trace::{TraceEvent, TraceKind, TraceRecorder};
