//! One-batch lookahead over [`WorkloadGen`] for pipelined training.
//!
//! The pipelined trainer needs batch `t+1`'s key set *during* batch
//! `t`'s compute (to issue the prefetch pull), and then the full batch
//! again one window later (to train on it). Regenerating is correct —
//! the generator is a pure function of `(spec, batch, worker)` — but
//! wasteful: sampling `batch_size × fields` ranks twice doubles the
//! host-side generation work of every batch. [`LookaheadGen`] memoizes
//! the most recent global batch so the peek-then-consume pattern
//! generates each batch exactly once, while staying bit-identical to
//! calling [`WorkloadGen::global_batch`] directly.

use crate::generator::{Batch, Key, WorkloadGen, WorkloadSpec};

/// A [`WorkloadGen`] with a single-slot memo of the last global batch.
pub struct LookaheadGen {
    gen: WorkloadGen,
    slot: Option<(u64, Vec<Batch>)>,
    generations: u64,
}

impl LookaheadGen {
    /// Wrap a generator.
    pub fn new(gen: WorkloadGen) -> Self {
        Self {
            gen,
            slot: None,
            generations: 0,
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &WorkloadSpec {
        self.gen.spec()
    }

    /// The wrapped generator.
    pub fn inner(&self) -> &WorkloadGen {
        &self.gen
    }

    /// How many global batches were actually generated (memo misses).
    /// A peek-then-consume pipeline over `n` batches should report `n`,
    /// not `2n`.
    pub fn generations(&self) -> u64 {
        self.generations
    }

    /// All workers' shares of `batch_idx`, memoized. Bit-identical to
    /// [`WorkloadGen::global_batch`].
    pub fn global_batch(&mut self, batch_idx: u64) -> &[Batch] {
        if self.slot.as_ref().map(|(b, _)| *b) != Some(batch_idx) {
            self.slot = Some((batch_idx, self.gen.global_batch(batch_idx)));
            self.generations += 1;
        }
        &self.slot.as_ref().expect("just filled").1
    }

    /// The union of all workers' deduplicated keys for `batch_idx`,
    /// sorted ascending — the set a prefetcher wants to stage before
    /// the batch starts. Shares the memo with [`Self::global_batch`].
    pub fn unique_union(&mut self, batch_idx: u64) -> Vec<Key> {
        let batches = self.global_batch(batch_idx);
        let mut union: Vec<Key> = batches
            .iter()
            .flat_map(|b| b.unique_keys.iter().copied())
            .collect();
        union.sort_unstable();
        union.dedup();
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_matches_direct_generation() {
        let spec = WorkloadSpec::small();
        let direct = WorkloadGen::new(spec.clone());
        let mut la = LookaheadGen::new(WorkloadGen::new(spec));
        for b in [0u64, 1, 2] {
            let d = direct.global_batch(b);
            let m = la.global_batch(b);
            assert_eq!(d.len(), m.len());
            for (x, y) in d.iter().zip(m.iter()) {
                assert_eq!(x.input_keys, y.input_keys);
                assert_eq!(x.unique_keys, y.unique_keys);
            }
        }
    }

    #[test]
    fn peek_then_consume_generates_once() {
        let mut la = LookaheadGen::new(WorkloadGen::new(WorkloadSpec::small()));
        let n = 5u64;
        // Pipelined access pattern: prefetch-peek t+1 while training t,
        // then consume t+1 at the next window.
        la.unique_union(0);
        for t in 0..n {
            la.global_batch(t);
            if t + 1 < n {
                la.unique_union(t + 1);
            }
        }
        // Each batch is generated exactly once: the peek fills the slot
        // and the consume one window later hits it.
        assert_eq!(la.generations(), n);
        // Repeated calls for the same batch never regenerate.
        let before = la.generations();
        la.global_batch(n - 1);
        la.unique_union(n - 1);
        assert_eq!(la.generations(), before);
    }

    #[test]
    fn unique_union_is_sorted_dedup_superset() {
        let mut la = LookaheadGen::new(WorkloadGen::new(WorkloadSpec::small()));
        let union = la.unique_union(3);
        let mut sorted = union.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(union, sorted);
        for b in la.global_batch(3).to_vec() {
            for k in b.unique_keys {
                assert!(union.binary_search(&k).is_ok());
            }
        }
    }
}
