//! Access-skew models over key *ranks* (rank 0 = hottest key).
//!
//! The model is a mixture over normalized rank x ∈ [0,1):
//!
//! ```text
//! p(x) = Σᵢ wᵢ · Exp(x; Lᵢ) + w_u · Uniform(x)
//! ```
//!
//! where `Exp(x; L) ∝ e^(−L·x)` truncated to [0,1). The paper observes
//! the production trace "follows an exponential distribution" (Fig. 10);
//! a single exponential cannot hit all three Table II points
//! simultaneously (real traces have a heavier tail), so the fitted model
//! uses two exponential components plus a uniform tail.

use rand::Rng;
use serde::Serialize;

/// A mixture skew model. Components are (weight, lambda) pairs over
/// normalized rank; remaining probability mass is uniform.
#[derive(Debug, Clone, Serialize)]
pub struct SkewModel {
    components: Vec<(f64, f64)>,
    uniform: f64,
}

impl SkewModel {
    /// Build a model from components; weights must sum to ≤ 1 and the
    /// remainder becomes the uniform tail.
    pub fn new(components: Vec<(f64, f64)>) -> Self {
        let total: f64 = components.iter().map(|&(w, _)| w).sum();
        assert!(
            (0.0..=1.0 + 1e-9).contains(&total),
            "component weights must sum to ≤ 1"
        );
        for &(w, l) in &components {
            assert!(w >= 0.0 && l > 0.0, "weights ≥ 0, lambdas > 0");
        }
        Self {
            uniform: (1.0 - total).max(0.0),
            components,
        }
    }

    /// The model fitted to the paper's Table II
    /// (top 0.05 % → 85.7 %, 0.1 % → 89.5 %, 1 % → 95.7 %; fit residual
    /// < 1e-4 on each point).
    pub fn paper_fit() -> Self {
        Self::new(vec![(0.79555, 20497.1), (0.16109, 960.87)])
    }

    /// A single truncated exponential (the paper's Fig. 10 fit form).
    pub fn exponential(lambda: f64) -> Self {
        Self::new(vec![(1.0, lambda)])
    }

    /// Uniform (no skew) — the pathological case for caches.
    pub fn uniform() -> Self {
        Self::new(vec![])
    }

    /// Scale the skew: `factor` > 1 concentrates accesses further
    /// (paper's "more skew", achieved by scaling the decay constants);
    /// `factor` < 1 flattens the distribution ("less skew").
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        Self::new(
            self.components
                .iter()
                .map(|&(w, l)| (w, l * factor))
                .collect(),
        )
    }

    /// CDF of one truncated exponential at normalized rank `x`.
    fn exp_cdf(x: f64, l: f64) -> f64 {
        (1.0 - (-l * x).exp()) / (1.0 - (-l).exp())
    }

    /// Fraction of all accesses landing on the hottest `frac` of keys
    /// (the Table II statistic), analytically.
    pub fn share_top(&self, frac: f64) -> f64 {
        let frac = frac.clamp(0.0, 1.0);
        let mut s = self.uniform * frac;
        for &(w, l) in &self.components {
            s += w * Self::exp_cdf(frac, l);
        }
        s
    }

    /// Normalized rank in [0,1) as a pure function of two uniform
    /// draws: `pick` selects the mixture component, `u` feeds its
    /// inverse CDF (or passes through for the uniform tail). Always
    /// consumes exactly two uniforms, so callers that own their own
    /// uniform stream (e.g. the batch generator's seeded stream) get a
    /// key sequence that is a pure function of the seed — independent
    /// of any `rand` implementation.
    pub fn x_from_uniforms(&self, pick: f64, u: f64) -> f64 {
        let mut pick = pick;
        for &(w, l) in &self.components {
            if pick < w {
                // Inverse CDF of the truncated exponential.
                let x = -(1.0 - u * (1.0 - (-l).exp())).ln() / l;
                return x.min(1.0 - f64::EPSILON);
            }
            pick -= w;
        }
        u
    }

    /// Sample a normalized rank in [0,1).
    pub fn sample_x<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let pick: f64 = rng.gen();
        let u: f64 = rng.gen();
        self.x_from_uniforms(pick, u)
    }

    /// Key rank in `[0, num_keys)` from two explicit uniform draws
    /// (see [`SkewModel::x_from_uniforms`]).
    pub fn rank_from_uniforms(&self, pick: f64, u: f64, num_keys: u64) -> u64 {
        ((self.x_from_uniforms(pick, u) * num_keys as f64) as u64).min(num_keys - 1)
    }

    /// Sample a key rank in `[0, num_keys)`.
    pub fn sample_rank<R: Rng + ?Sized>(&self, rng: &mut R, num_keys: u64) -> u64 {
        ((self.sample_x(rng) * num_keys as f64) as u64).min(num_keys - 1)
    }

    /// Density ratio descriptor for reports: expected accesses of rank 0
    /// relative to the mean (how "peaky" the head is).
    pub fn head_intensity(&self) -> f64 {
        let mut d = self.uniform;
        for &(w, l) in &self.components {
            d += w * l / (1.0 - (-l).exp());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_fit_reproduces_table2() {
        let m = SkewModel::paper_fit();
        let cases = [(0.0005, 0.857), (0.001, 0.895), (0.01, 0.957)];
        for (frac, expect) in cases {
            let got = m.share_top(frac);
            assert!(
                (got - expect).abs() < 0.002,
                "share_top({frac}) = {got}, paper says {expect}"
            );
        }
    }

    #[test]
    fn sampling_matches_analytic_share() {
        let m = SkewModel::paper_fit();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 1_000_000u64;
        let samples = 200_000;
        let cut = (0.001 * n as f64) as u64;
        let mut in_top = 0u64;
        for _ in 0..samples {
            if m.sample_rank(&mut rng, n) < cut {
                in_top += 1;
            }
        }
        let got = in_top as f64 / samples as f64;
        let expect = m.share_top(0.001);
        assert!(
            (got - expect).abs() < 0.01,
            "empirical {got} vs analytic {expect}"
        );
    }

    #[test]
    fn more_skew_concentrates_less_skew_flattens() {
        let base = SkewModel::paper_fit();
        let more = base.scaled(3.0);
        let less = base.scaled(0.3);
        let f = 0.001;
        assert!(more.share_top(f) > base.share_top(f));
        assert!(less.share_top(f) < base.share_top(f));
    }

    #[test]
    fn uniform_share_is_linear() {
        let u = SkewModel::uniform();
        assert!((u.share_top(0.25) - 0.25).abs() < 1e-12);
        assert!((u.share_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_monotone_and_bounded() {
        let m = SkewModel::paper_fit();
        let mut prev = 0.0;
        for i in 1..=100 {
            let f = i as f64 / 100.0;
            let s = m.share_top(f);
            assert!(s >= prev - 1e-12, "monotone");
            assert!((0.0..=1.0 + 1e-9).contains(&s));
            prev = s;
        }
        assert!((m.share_top(1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranks_within_bounds() {
        let m = SkewModel::paper_fit();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let r = m.sample_rank(&mut rng, 1000);
            assert!(r < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "sum to ≤ 1")]
    fn overweight_components_rejected() {
        SkewModel::new(vec![(0.7, 10.0), (0.5, 5.0)]);
    }
}
