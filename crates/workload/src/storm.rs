//! Hot-key storm workloads for placement/rebalancing studies.
//!
//! A *flash crowd* — a small set of keys suddenly absorbing most of the
//! traffic (a viral item, a trending ad campaign) — is the adversarial
//! case for static hash placement: when the crowd's keys happen to hash
//! onto one PS node, that shard melts while the rest idle. The storm
//! generator layers a transient zipf-weighted crowd over a stationary
//! background [`SkewModel`], deterministically, so two engines can
//! replay the identical storm.

use crate::skew::SkewModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Embedding key.
pub type Key = u64;

/// Description of a hot-key storm overlaid on a background workload.
#[derive(Debug, Clone)]
pub struct StormSpec {
    /// Total distinct keys in the model.
    pub num_keys: u64,
    /// Key references per batch (before any dedup).
    pub keys_per_batch: usize,
    /// The flash-crowd key set, hottest first (zipf-weighted within).
    pub hot_keys: Vec<Key>,
    /// Fraction of references hitting the crowd during the storm.
    pub hot_share: f64,
    /// Storm batch window `[storm_start, storm_end)`.
    pub storm_start: u64,
    /// Exclusive end of the storm window.
    pub storm_end: u64,
    /// Background access skew (outside and underneath the storm).
    pub base: SkewModel,
    /// RNG seed; batches are a pure function of `(spec, batch)`.
    pub seed: u64,
}

impl StormSpec {
    /// True if `batch` lies inside the storm window.
    pub fn in_storm(&self, batch: u64) -> bool {
        (self.storm_start..self.storm_end).contains(&batch)
    }
}

/// Deterministic batch generator for a [`StormSpec`].
pub struct StormGen {
    spec: StormSpec,
}

impl StormGen {
    /// Build a generator; the crowd must be non-empty and in range.
    pub fn new(spec: StormSpec) -> Self {
        assert!(spec.num_keys > 0 && spec.keys_per_batch > 0);
        assert!(!spec.hot_keys.is_empty(), "storm needs a crowd");
        assert!((0.0..=1.0).contains(&spec.hot_share));
        assert!(spec.storm_start <= spec.storm_end);
        assert!(
            spec.hot_keys.iter().all(|&k| k < spec.num_keys),
            "crowd keys in range"
        );
        Self { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &StormSpec {
        &self.spec
    }

    /// Zipf-ish rank sampler over `[0, n)` from a uniform `u ∈ [0, 1)`:
    /// `rank = exp(u · ln(n+1)) − 1`, so rank 0 draws ~`1/ln(n+1)` of
    /// the mass and the tail thins harmonically — the classic crowd
    /// shape without a per-`n` normalization table.
    pub fn zipf_rank(u: f64, n: u64) -> u64 {
        debug_assert!(n > 0);
        let r = ((u.clamp(0.0, 1.0) * ((n + 1) as f64).ln()).exp() - 1.0) as u64;
        r.min(n - 1)
    }

    /// Key references of `batch`, in reference order (duplicates kept).
    /// Inside the storm window, each reference hits the crowd with
    /// probability `hot_share` (zipf-weighted within the crowd);
    /// otherwise it samples the background skew.
    pub fn batch_keys(&self, batch: u64) -> Vec<Key> {
        let s = &self.spec;
        let mut rng =
            StdRng::seed_from_u64(s.seed ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5702);
        let storming = s.in_storm(batch);
        let mut keys = Vec::with_capacity(s.keys_per_batch);
        for _ in 0..s.keys_per_batch {
            if storming && rng.gen::<f64>() < s.hot_share {
                let rank = Self::zipf_rank(rng.gen::<f64>(), s.hot_keys.len() as u64);
                keys.push(s.hot_keys[rank as usize]);
            } else {
                keys.push(s.base.sample_rank(&mut rng, s.num_keys));
            }
        }
        keys
    }

    /// One key for open-loop request `req` — the serving-side sampler.
    ///
    /// A QPS driver replays requests as an unbounded stream, not in
    /// training batches; each request is a pure function of
    /// `(spec, req)` so N reader threads can partition the stream
    /// (`req = thread + i·threads`) and still replay the identical
    /// global workload. The storm window is interpreted in *request*
    /// units scaled by `keys_per_batch`: request `req` storms iff
    /// batch `req / keys_per_batch` storms, so a serving replay sees
    /// the same flash crowd the trainer saw.
    pub fn request_key(&self, req: u64) -> Key {
        let s = &self.spec;
        let mut rng =
            StdRng::seed_from_u64(s.seed ^ req.wrapping_mul(0xD134_2543_DE82_EF95) ^ 0x0E5E);
        let batch = req / s.keys_per_batch as u64;
        if s.in_storm(batch) && rng.gen::<f64>() < s.hot_share {
            let rank = Self::zipf_rank(rng.gen::<f64>(), s.hot_keys.len() as u64);
            s.hot_keys[rank as usize]
        } else {
            s.base.sample_rank(&mut rng, s.num_keys)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec() -> StormSpec {
        StormSpec {
            num_keys: 10_000,
            keys_per_batch: 2_000,
            hot_keys: (9_000..9_064).collect(),
            hot_share: 0.8,
            storm_start: 5,
            storm_end: 10,
            base: SkewModel::paper_fit(),
            seed: 42,
        }
    }

    #[test]
    fn deterministic_replay() {
        let g = StormGen::new(spec());
        assert_eq!(g.batch_keys(7), g.batch_keys(7));
        assert_ne!(g.batch_keys(7), g.batch_keys(8));
    }

    #[test]
    fn storm_concentrates_on_the_crowd() {
        let g = StormGen::new(spec());
        let crowd: HashSet<Key> = g.spec().hot_keys.iter().copied().collect();
        let share = |batch: u64| {
            let keys = g.batch_keys(batch);
            keys.iter().filter(|k| crowd.contains(k)).count() as f64 / keys.len() as f64
        };
        // During the storm ~hot_share of references hit the crowd …
        let during = share(7);
        assert!((during - 0.8).abs() < 0.05, "storm share = {during}");
        // … outside it, background skew rarely touches those cold ranks.
        let before = share(2);
        let after = share(12);
        assert!(before < 0.05, "pre-storm share = {before}");
        assert!(after < 0.05, "post-storm share = {after}");
    }

    #[test]
    fn crowd_is_zipf_weighted_within() {
        let g = StormGen::new(spec());
        let mut counts = vec![0u64; 64];
        for b in 5..10 {
            for k in g.batch_keys(b) {
                if (9_000..9_064).contains(&k) {
                    counts[(k - 9_000) as usize] += 1;
                }
            }
        }
        assert!(
            counts[0] > counts[32] && counts[0] > counts[63],
            "crowd head outdraws its tail: {} vs {} / {}",
            counts[0],
            counts[32],
            counts[63]
        );
    }

    #[test]
    fn zipf_rank_bounds_and_monotonicity() {
        for n in [1u64, 2, 64, 1_000_000] {
            assert_eq!(StormGen::zipf_rank(0.0, n), 0);
            assert!(StormGen::zipf_rank(1.0, n) < n);
            let mut last = 0;
            for i in 0..=100 {
                let r = StormGen::zipf_rank(i as f64 / 100.0, n);
                assert!(r >= last, "monotone in u");
                last = r;
            }
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let g = StormGen::new(spec());
        for b in [0u64, 5, 9, 20] {
            assert!(g.batch_keys(b).iter().all(|&k| k < 10_000));
        }
    }

    #[test]
    fn request_stream_is_deterministic_and_skewed() {
        let g = StormGen::new(spec());
        // Pure function of (spec, req): thread-partitionable.
        assert_eq!(g.request_key(12_345), g.request_key(12_345));
        let crowd: HashSet<Key> = g.spec().hot_keys.iter().copied().collect();
        let share = |reqs: std::ops::Range<u64>| {
            let n = reqs.end - reqs.start;
            reqs.filter(|&r| crowd.contains(&g.request_key(r))).count() as f64 / n as f64
        };
        // Request-unit storm window: batches 5..10 → requests
        // 10_000..20_000 at 2_000 keys per batch.
        let during = share(10_000..20_000);
        assert!((during - 0.8).abs() < 0.05, "storm share = {during}");
        let before = share(0..10_000);
        assert!(before < 0.05, "pre-storm share = {before}");
        // All in range.
        assert!((0..5_000).all(|r| g.request_key(r) < 10_000));
    }
}
