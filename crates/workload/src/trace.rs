//! Access-trace recording for the Fig. 2 analysis: requests per
//! millisecond at the parameter server, split into pull and update, over
//! a window of batches. Shows (a) pull/update arriving in equal pairs
//! and (b) the I/O bursts at batch boundaries with an idle compute gap
//! between them.

use oe_simdevice::Nanos;
use serde::Serialize;

/// Request category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceKind {
    /// Embedding lookup at batch start.
    Pull,
    /// Gradient write-back at batch end.
    Update,
}

/// One recorded event: `count` requests of `kind` at virtual time `at`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TraceEvent {
    /// Virtual timestamp.
    pub at: Nanos,
    /// Pull or update.
    pub kind: TraceKind,
    /// Number of requests (a burst is recorded as one event).
    pub count: u64,
}

/// Collects events and bins them per millisecond.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

/// One row of the Fig. 2 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MsBucket {
    /// Millisecond index from trace start.
    pub ms: u64,
    /// Pull requests in this millisecond.
    pub pulls: u64,
    /// Update requests in this millisecond.
    pub updates: u64,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` requests of `kind` at time `at`.
    pub fn record(&mut self, at: Nanos, kind: TraceKind, count: u64) {
        self.events.push(TraceEvent { at, kind, count });
    }

    /// Raw events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total pulls and updates (Fig. 2's "the total amount is
    /// consistent" check).
    pub fn totals(&self) -> (u64, u64) {
        let mut p = 0;
        let mut u = 0;
        for e in &self.events {
            match e.kind {
                TraceKind::Pull => p += e.count,
                TraceKind::Update => u += e.count,
            }
        }
        (p, u)
    }

    /// Bin events into per-millisecond buckets relative to the first
    /// event.
    pub fn per_ms(&self) -> Vec<MsBucket> {
        if self.events.is_empty() {
            return Vec::new();
        }
        let t0 = self.events.iter().map(|e| e.at).min().unwrap();
        let t1 = self.events.iter().map(|e| e.at).max().unwrap();
        let n_ms = ((t1 - t0) / 1_000_000 + 1) as usize;
        let mut buckets: Vec<MsBucket> = (0..n_ms as u64)
            .map(|ms| MsBucket {
                ms,
                pulls: 0,
                updates: 0,
            })
            .collect();
        for e in &self.events {
            let ms = ((e.at - t0) / 1_000_000) as usize;
            match e.kind {
                TraceKind::Pull => buckets[ms].pulls += e.count,
                TraceKind::Update => buckets[ms].updates += e.count,
            }
        }
        buckets
    }

    /// Burstiness metric: fraction of all requests that land in the
    /// busiest 10 % of milliseconds. Near 1.0 for synchronous training.
    pub fn burstiness(&self) -> f64 {
        let buckets = self.per_ms();
        if buckets.is_empty() {
            return 0.0;
        }
        let mut loads: Vec<u64> = buckets.iter().map(|b| b.pulls + b.updates).collect();
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 0.0;
        }
        loads.sort_unstable_by(|a, b| b.cmp(a));
        let k = (loads.len() / 10).max(1);
        loads[..k].iter().sum::<u64>() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_consistent() {
        let mut t = TraceRecorder::new();
        t.record(0, TraceKind::Pull, 100);
        t.record(5_000_000, TraceKind::Update, 100);
        let (p, u) = t.totals();
        assert_eq!(p, u);
    }

    #[test]
    fn per_ms_binning() {
        let mut t = TraceRecorder::new();
        t.record(0, TraceKind::Pull, 10);
        t.record(500_000, TraceKind::Pull, 5); // same ms
        t.record(2_000_000, TraceKind::Update, 15); // ms 2
        let b = t.per_ms();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].pulls, 15);
        assert_eq!(b[1].pulls + b[1].updates, 0);
        assert_eq!(b[2].updates, 15);
    }

    #[test]
    fn bursty_trace_has_high_burstiness() {
        let mut t = TraceRecorder::new();
        // Two long batches: bursts at 0, 44, 46, 90 ms; idle elsewhere.
        for (ms, kind) in [
            (0u64, TraceKind::Pull),
            (44, TraceKind::Update),
            (46, TraceKind::Pull),
            (90, TraceKind::Update),
        ] {
            t.record(ms * 1_000_000, kind, 1000);
        }
        assert!(t.burstiness() > 0.9, "burstiness {}", t.burstiness());
    }

    #[test]
    fn smooth_trace_has_low_burstiness() {
        let mut t = TraceRecorder::new();
        for ms in 0..100u64 {
            t.record(ms * 1_000_000, TraceKind::Pull, 10);
        }
        assert!(t.burstiness() < 0.2, "burstiness {}", t.burstiness());
    }

    #[test]
    fn empty_trace() {
        let t = TraceRecorder::new();
        assert_eq!(t.per_ms().len(), 0);
        assert_eq!(t.burstiness(), 0.0);
    }
}
