//! Cost planner: the paper's Table V argument, as a tool.
//!
//! Given a model size, sizes the cheapest feasible deployment per
//! engine, runs a short simulated training segment to estimate epoch
//! time, and prints $/epoch — reproducing the "PMem saves 42% storage
//! cost over pure DRAM" headline.
//!
//! ```sh
//! cargo run --release --example cost_planner
//! ```

use openembedding::prelude::*;

fn main() {
    println!("== PS deployment cost planner (Table V methodology) ==\n");
    let model_gb = 500.0;
    println!("model size: {model_gb} GB of embeddings\n");

    // Feasibility: DRAM-PS needs enough DRAM across servers; PMem
    // engines need enough PMem on one server.
    let costs = CloudCostModel::paper();
    let dram_dep = PsDeployment::DramServers { count: 2 }; // 2 × 384 GB
    let pmem_dep = PsDeployment::PmemServers { count: 1 }; // 756 GB PMem
    assert!(costs.dram_gb(dram_dep) as f64 >= model_gb);
    assert!(costs.pmem_gb(pmem_dep) as f64 >= model_gb);

    // Short DES segment per engine on the scaled workload; the ratio of
    // per-batch times stands in for the ratio of epoch times.
    let spec = WorkloadSpec {
        num_keys: 100_000,
        fields: 16,
        batch_size: 1024,
        workers: 4,
        skew: SkewModel::paper_fit(),
        seed: 11,
        drift_keys_per_batch: 0,
    };
    let mut node_cfg = NodeConfig::small(32);
    node_cfg.cache_bytes = (spec.num_keys as usize * node_cfg.payload_bytes()) / 250;
    node_cfg.pmem_capacity = 1 << 28;

    let run = |engine: &dyn PsEngine| -> f64 {
        let gen = WorkloadGen::new(spec.clone());
        let mut cfg = TrainerConfig::paper(4);
        cfg.ckpt = CheckpointScheduler::disabled();
        let mut t = SyncTrainer::new(engine, &gen, cfg);
        // Warm one pass over the hot set, then measure.
        t.run(1, 10);
        let r = t.run(11, 30);
        r.ns_per_batch()
    };

    let oe = PsNode::new(node_cfg.clone());
    let dram = DramPs::new(node_cfg.clone(), CkptDevice::Ssd);
    let ori = OriCache::new(node_cfg.clone(), CkptDevice::Pmem);
    let t_oe = run(&oe);
    let t_dram = run(&dram);
    let t_ori = run(&ori);

    // Anchor: the paper's DRAM-PS epoch is 5.75 h; scale others by the
    // simulated per-batch ratios.
    let dram_epoch_h = 5.75;
    let oe_epoch_h = dram_epoch_h * t_oe / t_dram;
    let ori_epoch_h = dram_epoch_h * t_ori / t_dram;

    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>12}",
        "engine", "deployment", "$/hour", "epoch (h)", "$/epoch"
    );
    let mut rows = Vec::new();
    for (name, dep, hours) in [
        ("DRAM-PS", dram_dep, dram_epoch_h),
        ("PMem-OE", pmem_dep, oe_epoch_h),
        ("Ori-Cache", pmem_dep, ori_epoch_h),
    ] {
        let per_hour = costs.per_hour(dep);
        let per_epoch = costs.per_epoch(dep, hours);
        println!(
            "{:<10} {:>12} {:>10.2} {:>12.2} {:>12.2}",
            name,
            match dep {
                PsDeployment::DramServers { count } => format!("{count}×DRAM"),
                PsDeployment::PmemServers { count } => format!("{count}×PMem"),
            },
            per_hour,
            hours,
            per_epoch
        );
        rows.push((name, per_epoch));
    }
    let dram_cost = rows[0].1;
    let oe_cost = rows[1].1;
    println!(
        "\nPMem-OE saves {:.0}% per epoch vs DRAM-PS (paper: 42%)",
        (1.0 - oe_cost / dram_cost) * 100.0
    );
}
