//! CTR prediction on the synthetic Criteo-like dataset (the paper's
//! Fig. 15 scenario): a DeepFM over 26 categorical fields + 13 dense
//! features, sparse embeddings on the PMem parameter server.
//!
//! Prints logloss and cache behaviour as training progresses; logloss
//! should fall well below the chance baseline (ln 2 ≈ 0.693).
//!
//! ```sh
//! cargo run --release --example ctr_training
//! ```

use openembedding::prelude::*;
use openembedding::workload::criteo::{CAT_FIELDS, DENSE_FEATURES};

const DIM: usize = 16;
const BATCH: usize = 256;
const BATCHES: u64 = 150;

fn main() {
    println!("== CTR training on synthetic Criteo ==\n");
    let data = CriteoSynth::new(2024);
    println!(
        "dataset: {} categorical fields, {} dense features, {} total keys",
        CAT_FIELDS,
        DENSE_FEATURES,
        data.total_keys()
    );

    // PS node: cache sized at ~6% of the embedding table (the paper uses
    // 128 MB ≈ 6.4% for dim 16).
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.08,
        eps: 1e-8,
    };
    let table_bytes = data.total_keys() as usize * cfg.payload_bytes();
    cfg.cache_bytes = table_bytes / 16;
    cfg.pmem_capacity = table_bytes * 2;
    let node = PsNode::new(cfg);

    let mut model = DeepFm::new(DeepFmConfig {
        dim: DIM,
        fields: CAT_FIELDS,
        dense_features: DENSE_FEATURES,
        hidden: vec![64, 32],
        dense_lr: 0.01,
        seed: 5,
    });

    let mut cost = Cost::new();
    let mut window_loss = 0.0f64;
    let mut window_n = 0u64;
    println!(
        "\n{:>6} {:>10} {:>10} {:>12}",
        "batch", "logloss", "miss%", "PS keys"
    );
    for b in 1..=BATCHES {
        let samples = data.batch((b - 1) * BATCH as u64, BATCH);

        // Collect this batch's unique keys and pull them.
        let mut keys: Vec<u64> = samples.iter().flat_map(|s| s.cat_keys.clone()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut weights = Vec::new();
        node.pull(&keys, b, &mut weights, &mut cost);
        node.end_pull_phase(b);

        // Train and aggregate per-key gradients.
        let mut grads = vec![0.0f32; keys.len() * DIM];
        let mut emb = vec![0.0f32; CAT_FIELDS * DIM];
        for s in &samples {
            for (f, k) in s.cat_keys.iter().enumerate() {
                let idx = keys.binary_search(k).expect("pulled");
                emb[f * DIM..(f + 1) * DIM].copy_from_slice(&weights[idx * DIM..(idx + 1) * DIM]);
            }
            let (loss, d_emb) = model.train_example(&emb, &s.dense, s.label);
            window_loss += loss as f64;
            window_n += 1;
            for (f, k) in s.cat_keys.iter().enumerate() {
                let idx = keys.binary_search(k).expect("pulled");
                for d in 0..DIM {
                    grads[idx * DIM + d] += d_emb[f * DIM + d];
                }
            }
        }
        model.step_dense();
        node.push(&keys, &grads, b, &mut cost);

        if b % 10 == 0 {
            let s = node.stats();
            println!(
                "{:>6} {:>10.4} {:>9.2}% {:>12}",
                b,
                window_loss / window_n as f64,
                s.miss_rate() * 100.0,
                node.num_keys()
            );
            window_loss = 0.0;
            window_n = 0;
        }
    }

    let s = node.stats();
    println!(
        "\nfinal: {} distinct keys on the PS, {} pulls ({} hits / {} misses / {} new)",
        node.num_keys(),
        s.pulls,
        s.hits,
        s.misses,
        s.new_entries
    );
    println!("virtual storage cost charged: {cost}");
    println!("\nCTR example complete — logloss should be well under 0.693 (chance).");
}
