//! Distributed deployment: the parameter server behind a real RPC
//! boundary (binary wire protocol + multi-threaded server event loop),
//! with training driven through `RemotePs` — the reproduction of the
//! paper's TensorFlow-operator → PS-node architecture (§V-C).
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use openembedding::net::NetConfig;
use openembedding::prelude::*;
use std::sync::Arc;

fn main() {
    println!("== Distributed PS over the wire ==\n");

    // 1. Boot a PS node behind a server with 8 service threads
    //    (paper Fig. 5: pre-allocated threads handling network pulls).
    let mut cfg = NodeConfig::small(16);
    cfg.cache_bytes = 256 << 10;
    let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(cfg));
    let (client_transport, server_transport) = loopback(64);
    let server = PsServer::spawn(engine, server_transport, 8);
    println!("server: 8 worker threads, loopback transport (queue depth 64)");

    // 2. Connect a remote engine handle: the handshake discovers the
    //    engine identity; after this the wire is invisible to the
    //    trainer.
    let remote = RemotePs::connect(Arc::new(client_transport), NetConfig::paper_default());
    println!(
        "client: connected to \"{}\" serving dim-{} embeddings\n",
        remote.name(),
        remote.dim()
    );

    // 3. Train through the wire, with checkpoints.
    let spec = WorkloadSpec {
        num_keys: 20_000,
        fields: 8,
        batch_size: 256,
        workers: 4,
        skew: SkewModel::paper_fit(),
        seed: 3,
        drift_keys_per_batch: 0,
    };
    let gen = WorkloadGen::new(spec);
    let mut tcfg = TrainerConfig::paper(4);
    tcfg.ckpt = CheckpointScheduler::every(50_000_000);
    let mut trainer = SyncTrainer::new(&remote, &gen, tcfg);
    let report = trainer.run(1, 40);
    println!("trained 40 batches over RPC: {}", report.summary());
    println!(
        "committed checkpoint: {}  ({} checkpoints requested)",
        report.committed_checkpoint, report.checkpoints_taken
    );

    // 4. Verify the remote state agrees with a local replica of the
    //    same run (the wire adds cost, never drift).
    let mut cfg = NodeConfig::small(16);
    cfg.cache_bytes = 256 << 10;
    let local = PsNode::new(cfg);
    let mut t2 = SyncTrainer::new(&local, &gen, TrainerConfig::paper(4));
    t2.run(1, 40);
    let mut checked = 0;
    for key in 0..20_000u64 {
        match (remote.read_weights(key), local.read_weights(key)) {
            (Some(a), Some(b)) => {
                assert_eq!(a, b, "key {key}");
                checked += 1;
            }
            (None, None) => {}
            _ => panic!("presence mismatch at key {key}"),
        }
    }
    println!("verified {checked} keys bit-identical to a local replica");

    // 5. Clean shutdown: drop the client, join the workers.
    drop(remote);
    let served = server.join();
    println!("server exited cleanly after serving {served} requests");
}
