//! Fault tolerance demo: batch-level checkpoint consistency under
//! crashes (paper §V-C, §VI-E).
//!
//! Trains with periodic lightweight checkpoints, kills the machine at a
//! random point, recovers, and *proves* batch-level consistency: the
//! recovered weights are bit-identical to an independent reference run
//! stopped exactly at the committed checkpoint.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use openembedding::prelude::*;
use openembedding::train::failure::crash_and_recover;

const DIM: usize = 8;

fn node_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 64 << 10;
    cfg
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 5_000,
        fields: 6,
        batch_size: 128,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 99,
        drift_keys_per_batch: 0,
    }
}

/// Train `node` for batches [from, to] with synthetic gradients,
/// requesting a checkpoint after every `ckpt_every` batches.
fn train(node: &PsNode, from: u64, to: u64, ckpt_every: u64) {
    let gen = WorkloadGen::new(spec());
    for b in from..=to {
        let mut cfg = TrainerConfig::paper(2);
        cfg.mode = TrainMode::Synthetic { grad_scale: 0.02 };
        let mut t = SyncTrainer::new(node, &gen, cfg);
        t.run(b, 1);
        if ckpt_every > 0 && b % ckpt_every == 0 {
            node.request_checkpoint(b);
        }
    }
}

fn main() {
    println!("== Fault tolerance / batch-level consistency demo ==\n");

    // Run A: train 25 batches, checkpoint every 5.
    let node = PsNode::new(node_cfg());
    train(&node, 1, 25, 5);
    let committed = node.committed_checkpoint();
    println!("trained 25 batches; committed checkpoint = {committed}");

    // CRASH at an arbitrary instant (torn unfenced lines, seeded).
    let (recovered, outcome) = crash_and_recover(&node, node_cfg(), 0xBADC0FFE, 4);
    println!(
        "crash! recovered {} keys to batch {} in {:.1} ms (virtual), discarded {} uncommitted slots",
        outcome.recovered_keys,
        outcome.resume_batch,
        outcome.recovery_ns as f64 / 1e6,
        outcome.discarded_future
    );

    // Reference: an independent run stopped exactly at the checkpoint.
    let reference = PsNode::new(node_cfg());
    train(&reference, 1, outcome.resume_batch, 0);

    // Verify bit-identical weights for every recovered key.
    let mut checked = 0u64;
    let mut max_dev = 0.0f32;
    for key in 0..spec().num_keys {
        match (recovered.read_weights(key), reference.read_weights(key)) {
            (Some(a), Some(b)) => {
                for (x, y) in a.iter().zip(&b) {
                    max_dev = max_dev.max((x - y).abs());
                }
                checked += 1;
            }
            (None, None) => {}
            (a, b) => panic!(
                "key {key}: presence mismatch (recovered {:?}, reference {:?})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
    println!("verified {checked} keys: max weight deviation = {max_dev:e}");
    assert_eq!(max_dev, 0.0, "batch-level consistency is bit-exact");

    // Resume and finish the epoch on the recovered node.
    train(&recovered, outcome.resume_batch + 1, 30, 5);
    println!(
        "resumed and trained to batch 30; committed checkpoint = {}",
        recovered.committed_checkpoint()
    );
    println!("\nfault-tolerance demo complete: recovery is exact and fast.");
}
