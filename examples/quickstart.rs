//! Quickstart: train a DeepFM against the PMem-backed parameter server
//! on a skewed synthetic workload, take a lightweight checkpoint, crash
//! the machine, recover, and keep training.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use openembedding::core::recovery::recover_node;
use openembedding::prelude::*;
use openembedding::simdevice::Media;
use std::sync::Arc;

fn main() {
    println!("== OpenEmbedding-RS quickstart ==\n");

    // 1. A PS node: dim-16 embeddings, AdaGrad, 256 KiB DRAM cache on
    //    top of simulated PMem.
    let mut node_cfg = NodeConfig::small(16);
    node_cfg.cache_bytes = 256 << 10;
    let node = PsNode::new(node_cfg.clone());
    println!("PS node: {}", node.pool().describe());

    // 2. A skewed workload shaped like the paper's production trace.
    let spec = WorkloadSpec {
        num_keys: 50_000,
        fields: 8,
        batch_size: 256,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 7,
        drift_keys_per_batch: 0,
    };
    let gen = WorkloadGen::new(spec);

    // 3. Train a real DeepFM for 30 batches.
    let mut tcfg = TrainerConfig::paper(2);
    tcfg.mode = TrainMode::DeepFm(DeepFmConfig {
        dim: 16,
        fields: 8,
        dense_features: 0,
        hidden: vec![32, 16],
        dense_lr: 0.02,
        seed: 1,
    });
    let mut trainer = SyncTrainer::new(&node, &gen, tcfg);
    let r1 = trainer.run(1, 30);
    println!("\nafter 30 batches : {}", r1.summary());
    println!("  avg logloss    : {:.4}", r1.avg_loss.unwrap());
    println!("  virtual time   : {:.2} s", r1.total_secs());

    // 4. Lightweight batch-aware checkpoint at batch 30.
    let req_cost = node.request_checkpoint(30);
    println!("\ncheckpoint request cost: {req_cost} (near-zero: just an enqueue)");
    let r2 = trainer.run(31, 10); // the commit rides the next maintenance
    println!(
        "after 10 more    : committed checkpoint = {}",
        node.committed_checkpoint()
    );
    drop(r2);

    // 5. Power failure! The DRAM cache is gone; PMem survives (with
    //    torn unfenced lines).
    let probe_key = 42u64;
    let before = node.read_weights(probe_key);
    let media = Arc::new(Media::from_crash(node.pool().media().crash(0xDEAD)));
    let mut rec_cost = Cost::new();
    let (recovered, report) =
        recover_node(media, node_cfg, &mut rec_cost).expect("pool is recoverable");
    println!(
        "\nrecovered {} entries to batch {} (scanned {} slots, {:.1} MB, discarded {} uncommitted)",
        report.scan.live.len(),
        report.resume_batch,
        report.scan.scanned_slots,
        report.scan.scan_bytes as f64 / 1e6,
        report.scan.discarded_future,
    );
    let after = recovered.read_weights(probe_key);
    println!(
        "key {probe_key}: pre-crash weight[0] = {:?}, recovered = {:?} (checkpoint-time state)",
        before.map(|w| w[0]),
        after.map(|w| w[0])
    );

    // 6. Resume training from the checkpoint.
    let mut tcfg = TrainerConfig::paper(2);
    tcfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
    let mut trainer = SyncTrainer::new(&recovered, &gen, tcfg);
    let resume_from = report.resume_batch + 1;
    let r3 = trainer.run(resume_from, 10);
    println!("\nresumed at batch {resume_from}: {}", r3.summary());
    println!("\nquickstart complete.");
}
