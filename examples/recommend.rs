//! Train → checkpoint → snapshot image → serve recommendations.
//!
//! The full production lifecycle from the paper's deployment story
//! (§III: the model backs "real-time recommendation services"):
//!
//! 1. train item embeddings on the PS,
//! 2. take a lightweight batch-aware checkpoint,
//! 3. capture the PMem persistence domain as a snapshot image file,
//! 4. decode the image into an immutable `Snapshot` (with an ANN
//!    index), publish it through an epoch-flipped `SnapshotHandle`,
//!    and answer top-k item-to-item queries with both the exact and
//!    the LSH retriever arms.
//!
//! Inspect the image afterwards with the ops CLI:
//! `cargo run --release -p oe-serve --bin oectl -- info /tmp/oe_recsys.img`
//!
//! ```sh
//! cargo run --release --example recommend
//! ```

use openembedding::prelude::*;
use openembedding::workload::CriteoSynth;

const DIM: usize = 16;
const BATCHES: u64 = 60;
const BATCH: usize = 256;

fn main() {
    println!("== Recommendation serving from a checkpoint image ==\n");

    // 1. Train a DeepFM on synthetic Criteo so the item embeddings carry
    //    real co-occurrence structure.
    let data = CriteoSynth::new(7);
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.08,
        eps: 1e-8,
    };
    cfg.cache_bytes = 4 << 20;
    cfg.pmem_capacity = 256 << 20;
    let node = PsNode::new(cfg);
    let mut model = DeepFm::new(DeepFmConfig {
        dim: DIM,
        fields: openembedding::workload::criteo::CAT_FIELDS,
        dense_features: openembedding::workload::criteo::DENSE_FEATURES,
        hidden: vec![32, 16],
        dense_lr: 0.01,
        seed: 5,
    });
    let mut cost = Cost::new();
    for b in 1..=BATCHES {
        let samples = data.batch((b - 1) * BATCH as u64, BATCH);
        let mut keys: Vec<u64> = samples.iter().flat_map(|s| s.cat_keys.clone()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut weights = Vec::new();
        node.pull(&keys, b, &mut weights, &mut cost);
        node.end_pull_phase(b);
        let mut grads = vec![0.0f32; keys.len() * DIM];
        let mut emb = vec![0.0f32; openembedding::workload::criteo::CAT_FIELDS * DIM];
        for s in &samples {
            for (f, k) in s.cat_keys.iter().enumerate() {
                let idx = keys.binary_search(k).unwrap();
                emb[f * DIM..(f + 1) * DIM].copy_from_slice(&weights[idx * DIM..(idx + 1) * DIM]);
            }
            let (_, d_emb) = model.train_example(&emb, &s.dense, s.label);
            for (f, k) in s.cat_keys.iter().enumerate() {
                let idx = keys.binary_search(k).unwrap();
                for d in 0..DIM {
                    grads[idx * DIM + d] += d_emb[f * DIM + d];
                }
            }
        }
        model.step_dense();
        node.push(&keys, &grads, b, &mut cost);
    }
    println!(
        "trained {BATCHES} batches; {} item embeddings live",
        node.num_keys()
    );

    // 2. Checkpoint + commit.
    node.request_checkpoint(BATCHES);
    let mut out = Vec::new();
    node.pull(&[0], BATCHES + 1, &mut out, &mut cost);
    node.end_pull_phase(BATCHES + 1);
    println!(
        "checkpoint committed at batch {}",
        node.committed_checkpoint()
    );

    // 3. Capture the persistence domain as an image file.
    let image = node.pool().media().crash(0x5EED);
    let path = std::env::temp_dir().join("oe_recsys.img");
    save_image(&image, &path).expect("write image");
    println!(
        "snapshot image: {} ({:.1} MB)",
        path.display(),
        std::fs::metadata(&path).unwrap().len() as f64 / 1e6
    );

    // 4. Serve: decode the image once into an immutable snapshot with a
    //    per-snapshot ANN index, publish it through a SnapshotHandle
    //    (the epoch-flipped, lock-free multi-reader surface), and answer
    //    item-to-item queries. Reads are borrows into the snapshot
    //    arena — no out-params, no per-call allocation — each paired
    //    with its virtual cost.
    let image = load_image(&path).expect("read image");
    let mut serve_cost = Cost::new();
    let snapshot =
        Snapshot::build(image, DIM, Some(&AnnConfig::paper_default())).expect("open image");
    serve_cost.merge(snapshot.build_cost());
    let handle = SnapshotHandle::new(std::sync::Arc::new(snapshot));
    let mut reader = handle.reader();
    let snap = reader.acquire();
    println!(
        "\nserving snapshot: {} keys @ checkpoint {} (epoch {})\n",
        snap.num_keys(),
        snap.checkpoint(),
        handle.epoch()
    );

    // Query: the most popular key of a large categorical field.
    let field = 2; // a 150k-cardinality field
    let query_key = snap
        .keys()
        .iter()
        .copied()
        .find(|k| data.field_range(field).contains(k))
        .expect("field has trained keys");
    let (query, qcost) = snap.lookup(query_key);
    let query = query.expect("served key").to_vec();
    serve_cost.merge(&qcost);

    for retriever in [&ExactScan as &dyn Retriever, &LshRetriever] {
        let (top, cost) = reader.retrieve(&query, 5, retriever);
        serve_cost.merge(&cost);
        println!(
            "top-5 items related to key {query_key} ({} arm):",
            retriever.name()
        );
        for t in top {
            println!("  key {:<12} score {:+.4}", t.key, t.score);
        }
    }
    println!("\nserving cost charged: {serve_cost}");
    println!(
        "\ninspect the image: cargo run -p oe-serve --bin oectl -- info {}",
        path.display()
    );
}
