//! Engine parity: every storage engine — OpenEmbedding (all ablation
//! configurations), DRAM-PS, Ori-Cache, PMem-Hash, TF-PS, and clusters
//! thereof — produces *bit-identical* weights on the same deterministic
//! workload. The engines differ only in where bytes live and what they
//! cost; the training math is shared, so any divergence is a bug.

use openembedding::prelude::*;

const DIM: usize = 8;

fn node_cfg(cache_entries: usize) -> NodeConfig {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 2_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 31,
        drift_keys_per_batch: 0,
    }
}

fn train(engine: &dyn PsEngine, batches: u64) {
    let gen = WorkloadGen::new(spec());
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.03 };
    let mut t = SyncTrainer::new(engine, &gen, cfg);
    t.run(1, batches);
}

fn weights_of(engine: &dyn PsEngine) -> Vec<(u64, Vec<f32>)> {
    (0..spec().num_keys)
        .filter_map(|k| engine.read_weights(k).map(|w| (k, w)))
        .collect()
}

#[test]
fn all_engines_converge_to_identical_weights() {
    let reference = DramPs::new(node_cfg(100), CkptDevice::Ssd);
    train(&reference, 12);
    let expect = weights_of(&reference);
    assert!(expect.len() > 100, "nontrivial key set: {}", expect.len());

    // OE at several cache sizes (heavy eviction ↔ no eviction), plus
    // ablation configs, plus every baseline.
    let mut engines: Vec<Box<dyn PsEngine>> = vec![
        Box::new(PsNode::new(node_cfg(16))),
        Box::new(PsNode::new(node_cfg(200))),
        Box::new(PsNode::new(node_cfg(5_000))),
        Box::new(OriCache::new(node_cfg(64), CkptDevice::Pmem)),
        Box::new(PmemHash::new(node_cfg(64))),
        Box::new(TfPs::new(node_cfg(64), CkptDevice::Ssd)),
        Box::new(IncrementalCkpt::new(
            PsNode::new(node_cfg(64)),
            CkptDevice::Pmem,
        )),
    ];
    {
        let mut no_cache = node_cfg(64);
        no_cache.enable_cache = false;
        engines.push(Box::new(PsNode::new(no_cache)));
        let mut no_pipe = node_cfg(64);
        no_pipe.enable_pipeline = false;
        engines.push(Box::new(PsNode::new(no_pipe)));
        let mut sharded = node_cfg(256);
        sharded.shards = 8;
        engines.push(Box::new(PsNode::new(sharded)));
        // Alternative cache policies change locality, never weights.
        use openembedding::cache::{AdmissionKind, PolicyKind};
        let mut fifo = node_cfg(64);
        fifo.replacement = PolicyKind::Fifo;
        engines.push(Box::new(PsNode::new(fifo)));
        let mut clock = node_cfg(64);
        clock.replacement = PolicyKind::Clock;
        engines.push(Box::new(PsNode::new(clock)));
        let mut doorkeeper = node_cfg(64);
        doorkeeper.admission = AdmissionKind::SecondTouch;
        engines.push(Box::new(PsNode::new(doorkeeper)));
    }

    for engine in &engines {
        train(engine.as_ref(), 12);
        let got = weights_of(engine.as_ref());
        assert_eq!(
            got.len(),
            expect.len(),
            "{}: key count mismatch",
            engine.name()
        );
        for ((k1, w1), (k2, w2)) in got.iter().zip(&expect) {
            assert_eq!(k1, k2, "{}", engine.name());
            assert_eq!(w1, w2, "{}: weights diverge at key {k1}", engine.name());
        }
    }
}

#[test]
fn cluster_parity_with_checkpointing_enabled() {
    let single = PsNode::new(node_cfg(128));
    train(&single, 8);
    single.request_checkpoint(8);
    train_more(&single, 9, 4);

    let cluster = Cluster::new((0..4).map(|_| PsNode::new(node_cfg(32))).collect());
    train(&cluster, 8);
    cluster.request_checkpoint(8);
    train_more(&cluster, 9, 4);

    assert_eq!(
        single.committed_checkpoint(),
        cluster.committed_checkpoint()
    );
    for key in 0..spec().num_keys {
        assert_eq!(single.read_weights(key), cluster.read_weights(key));
    }
}

fn train_more(engine: &dyn PsEngine, from: u64, n: u64) {
    let gen = WorkloadGen::new(spec());
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.03 };
    let mut t = SyncTrainer::new(engine, &gen, cfg);
    t.run(from, n);
}

#[test]
fn checkpointing_never_perturbs_training_state() {
    // Same run with and without aggressive checkpointing: identical
    // weights (checkpoints are pure persistence, zero training effect).
    let quiet = PsNode::new(node_cfg(64));
    train(&quiet, 12);

    let noisy = PsNode::new(node_cfg(64));
    let gen = WorkloadGen::new(spec());
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.03 };
    let mut t = SyncTrainer::new(&noisy, &gen, cfg);
    for b in 1..=12 {
        t.run(b, 1);
        noisy.request_checkpoint(b);
    }
    assert!(noisy.committed_checkpoint() >= 11);
    for key in 0..spec().num_keys {
        assert_eq!(quiet.read_weights(key), noisy.read_weights(key));
    }
}
