//! Checkpoint/recovery equivalence: recovering after a crash yields
//! *bit-identical* state to an independent reference run stopped at the
//! committed checkpoint — the batch-level consistency guarantee of
//! §V-B/C, end to end through the trainer.

use openembedding::prelude::*;
use openembedding::train::failure::crash_and_recover;

const DIM: usize = 8;

fn node_cfg(cache_entries: usize) -> NodeConfig {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 3_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 77,
        drift_keys_per_batch: 0,
    }
}

/// Train batches [from, to], requesting a checkpoint after `ckpt_at`.
fn train(node: &PsNode, from: u64, to: u64, ckpt_at: Option<u64>) {
    let gen = WorkloadGen::new(spec());
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.02 };
    let mut t = SyncTrainer::new(node, &gen, cfg);
    for b in from..=to {
        t.run(b, 1);
        if ckpt_at == Some(b) {
            node.request_checkpoint(b);
        }
    }
}

fn assert_state_equals_reference(recovered: &PsNode, upto_batch: u64, cache_entries: usize) {
    let reference = PsNode::new(node_cfg(cache_entries));
    train(&reference, 1, upto_batch, None);
    let mut checked = 0;
    for key in 0..spec().num_keys {
        let (a, b) = (recovered.read_weights(key), reference.read_weights(key));
        assert_eq!(a, b, "key {key}");
        if a.is_some() {
            checked += 1;
        }
    }
    assert!(checked > 100, "nontrivial state compared: {checked}");
}

#[test]
fn recovery_is_bit_exact_with_large_cache() {
    // Large cache: few evictions, commit relies on the drain pass.
    let cache = 4_000;
    let node = PsNode::new(node_cfg(cache));
    train(&node, 1, 12, Some(8));
    train(&node, 13, 20, None); // progress past the checkpoint
    assert_eq!(node.committed_checkpoint(), 8);
    for seed in [1, 2, 3] {
        let (recovered, outcome) = crash_and_recover(&node, node_cfg(cache), seed, 2);
        assert_eq!(outcome.resume_batch, 8);
        assert_state_equals_reference(&recovered, 8, cache);
    }
}

#[test]
fn recovery_is_bit_exact_with_tiny_cache() {
    // Tiny cache: constant evictions + version-chain churn; commits
    // happen on the eviction path (Alg. 2 lines 24-27).
    let cache = 48;
    let node = PsNode::new(node_cfg(cache));
    train(&node, 1, 10, Some(7));
    train(&node, 11, 15, None);
    assert_eq!(node.committed_checkpoint(), 7);
    let (recovered, outcome) = crash_and_recover(&node, node_cfg(cache), 9, 2);
    assert_eq!(outcome.resume_batch, 7);
    assert_state_equals_reference(&recovered, 7, cache);
}

#[test]
fn multiple_sequential_checkpoints_recover_to_the_last() {
    let cache = 1_000;
    let node = PsNode::new(node_cfg(cache));
    for (upto, cp) in [(5u64, 5u64), (10, 10), (15, 15)] {
        train(&node, upto.saturating_sub(4), upto, Some(cp));
    }
    train(&node, 16, 18, None); // commits cp=15 during maintenance
    assert_eq!(node.committed_checkpoint(), 15);
    let (recovered, outcome) = crash_and_recover(&node, node_cfg(cache), 4, 2);
    assert_eq!(outcome.resume_batch, 15);
    assert_state_equals_reference(&recovered, 15, cache);
}

#[test]
fn resume_after_recovery_matches_uninterrupted_run() {
    // Crash + recover + retrain the lost batches == never crashing,
    // because batches are deterministic. The strongest end-to-end claim.
    let cache = 800;
    let node = PsNode::new(node_cfg(cache));
    train(&node, 1, 10, Some(10));
    train(&node, 11, 11, None); // commit 10
    let (recovered, outcome) = crash_and_recover(&node, node_cfg(cache), 31, 2);
    assert_eq!(outcome.resume_batch, 10);
    // Redo batch 11 and continue to 16 on the recovered node.
    train(&recovered, 11, 16, None);

    let uninterrupted = PsNode::new(node_cfg(cache));
    train(&uninterrupted, 1, 16, None);
    for key in 0..spec().num_keys {
        assert_eq!(
            recovered.read_weights(key),
            uninterrupted.read_weights(key),
            "key {key}"
        );
    }
}

#[test]
fn dram_ps_recovery_loses_post_checkpoint_progress_too() {
    // The incremental-checkpoint baseline recovers to its last dump —
    // engine-parity for the recovery contract.
    use openembedding::baselines::DramPs;
    let gen = WorkloadGen::new(spec());
    let dram = DramPs::new(node_cfg(100), CkptDevice::Ssd);
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.02 };
    let mut t = SyncTrainer::new(&dram, &gen, cfg);
    t.run(1, 6);
    dram.request_checkpoint(6);
    t.run(7, 4); // lost progress
    let media = std::sync::Arc::clone(dram.ckpt_log().media());
    let mut cost = Cost::new();
    let (recovered, resume) =
        DramPs::recover(&media, node_cfg(100), CkptDevice::Ssd, &mut cost).unwrap();
    assert_eq!(resume, 6);

    let reference = DramPs::new(node_cfg(100), CkptDevice::Ssd);
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::Synthetic { grad_scale: 0.02 };
    let mut t = SyncTrainer::new(&reference, &gen, cfg);
    t.run(1, 6);
    for key in 0..spec().num_keys {
        assert_eq!(recovered.read_weights(key), reference.read_weights(key));
    }
}
