//! Real-thread concurrency tests: the engines' internal locking must
//! keep state consistent when hammered in parallel (the functional layer
//! of the two-layer evaluation strategy).

use openembedding::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 4;

fn oe(cache_entries: usize, shards: usize) -> PsNode {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg.shards = shards;
    PsNode::new(cfg)
}

#[test]
fn parallel_pulls_return_stable_weights() {
    for shards in [1, 4] {
        let node = Arc::new(oe(256, shards));
        // Warm 128 keys at batch 1, maintain so they're versioned.
        let keys: Vec<u64> = (0..128).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        node.pull(&keys, 1, &mut out, &mut cost);
        node.end_pull_phase(1);
        let expected = out.clone();

        let handles: Vec<_> = (0..8)
            .map(|_| {
                let node = Arc::clone(&node);
                let keys = keys.clone();
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut cost = Cost::new();
                    for round in 0..30 {
                        out.clear();
                        node.pull(&keys, 2 + round, &mut out, &mut cost);
                        assert_eq!(out, expected, "weights stable under read load");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[test]
fn parallel_first_touch_initializes_each_key_once() {
    let node = Arc::new(oe(2048, 4));
    let created = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let node = Arc::clone(&node);
            let created = Arc::clone(&created);
            std::thread::spawn(move || {
                // All threads race on the same 512 keys.
                let keys: Vec<u64> = (0..512).map(|i| (i + t * 64) % 512).collect();
                let mut out = Vec::new();
                let mut cost = Cost::new();
                node.pull(&keys, 1, &mut out, &mut cost);
                created.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(node.num_keys(), 512, "no duplicate inserts");
    assert_eq!(node.stats().new_entries, 512, "each key initialized once");
    // And every key reads back its deterministic init.
    for k in 0..512u64 {
        let w = node.read_weights(k).unwrap();
        let expect: Vec<f32> = (0..DIM)
            .map(|i| openembedding::core::init::init_weight(42, k, i, 0.01))
            .collect();
        assert_eq!(w, expect, "key {k}");
    }
}

#[test]
fn concurrent_pushes_to_disjoint_keys_all_apply() {
    let node = Arc::new(oe(4096, 4));
    let n_threads = 8u64;
    let per = 128u64;
    // Warm all keys and run maintenance.
    let all: Vec<u64> = (0..n_threads * per).collect();
    let mut out = Vec::new();
    let mut cost = Cost::new();
    node.pull(&all, 1, &mut out, &mut cost);
    node.end_pull_phase(1);

    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let node = Arc::clone(&node);
            std::thread::spawn(move || {
                let keys: Vec<u64> = (t * per..(t + 1) * per).collect();
                let grads = vec![1.0f32; keys.len() * DIM];
                let mut cost = Cost::new();
                node.push(&keys, &grads, 1, &mut cost);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SGD lr=0.1: every weight moved by exactly -0.1.
    for k in 0..n_threads * per {
        let w = node.read_weights(k).unwrap();
        let init = openembedding::core::init::init_weight(42, k, 0, 0.01);
        assert!((w[0] - (init - 0.1)).abs() < 1e-6, "key {k}");
    }
}

#[test]
fn maintenance_races_with_pulls_without_corruption() {
    // Pulls of batch n+1 proceed while maintenance of batch n drains —
    // the pipeline overlap the paper's design hinges on.
    let node = Arc::new(oe(64, 2));
    let keys: Vec<u64> = (0..256).collect();
    let mut out = Vec::new();
    let mut cost = Cost::new();
    node.pull(&keys, 1, &mut out, &mut cost);

    let n2 = Arc::clone(&node);
    let maint = std::thread::spawn(move || {
        let mut c = Cost::new();
        n2.run_maintenance(1, &mut c);
    });
    let n3 = Arc::clone(&node);
    let puller = std::thread::spawn(move || {
        let mut out = Vec::new();
        let mut c = Cost::new();
        for _ in 0..10 {
            out.clear();
            n3.pull(&(0..64u64).collect::<Vec<_>>(), 2, &mut out, &mut c);
            assert_eq!(out.len(), 64 * DIM);
            assert!(out.iter().all(|v| v.is_finite()));
        }
    });
    maint.join().unwrap();
    puller.join().unwrap();
    // Everything still readable and intact afterwards.
    for k in 0..256u64 {
        assert!(node.read_weights(k).is_some(), "key {k}");
    }
}

#[test]
fn telemetry_registry_consistent_under_writer_reader_race() {
    // N writer threads hammer counter and histogram handles while a
    // reader thread snapshots and renders the registry the whole time.
    // Once the writers join, the totals must be exact — the lock-free
    // recording path may not drop a single sample.
    let registry = Arc::new(Registry::new());
    let n_threads = 8u64;
    let per_thread = 10_000u64;
    let stop = Arc::new(std::sync::atomic::AtomicU64::new(0));

    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut renders = 0u64;
            while stop.load(Ordering::Relaxed) == 0 {
                let snap = registry.snapshot();
                if let Some(h) = snap.histogram("race_latency_ns") {
                    if h.count() > 0 {
                        // Mid-race quantiles stay inside the observed range.
                        let p99 = h.p99();
                        assert!((1..=1_000_000).contains(&p99), "p99 = {p99}");
                    }
                }
                let text = snap.render_text();
                if snap.counter("race_ops_total").is_some() {
                    assert!(text.contains("race_ops_total"), "text:\n{text}");
                }
                renders += 1;
            }
            renders
        })
    };

    let writers: Vec<_> = (0..n_threads)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Handles are cheap clones of shared atomics; each
                // thread grabs its own, all feeding the same metrics.
                let ops = registry.counter("race_ops_total");
                let hist = registry.histogram("race_latency_ns");
                for i in 0..per_thread {
                    ops.inc();
                    // Spread values over [1, 1e6].
                    hist.record(1 + (t * per_thread + i) * 999_999 / (n_threads * per_thread));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    let renders = reader.join().unwrap();
    assert!(renders > 0, "reader made progress during the race");

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("race_ops_total"),
        Some(n_threads * per_thread),
        "counter increments all landed"
    );
    let h = snap.histogram("race_latency_ns").expect("histogram");
    assert_eq!(h.count(), n_threads * per_thread, "no sample lost");
    for q in [0.5, 0.95, 0.99, 0.999] {
        let v = h.quantile(q);
        assert!(
            (h.min()..=h.max()).contains(&v),
            "quantile({q}) = {v} outside [{}, {}]",
            h.min(),
            h.max()
        );
    }
}

#[test]
fn baselines_survive_parallel_access_too() {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
    cfg.cache_bytes = 256 * cfg.bytes_per_cached_entry();
    let engines: Vec<Arc<dyn PsEngine>> = vec![
        Arc::new(DramPs::new(cfg.clone(), CkptDevice::Ssd)),
        Arc::new(OriCache::new(cfg.clone(), CkptDevice::Pmem)),
        Arc::new(PmemHash::new(cfg.clone())),
        Arc::new(TfPs::new(cfg.clone(), CkptDevice::Ssd)),
    ];
    for engine in engines {
        let keys: Vec<u64> = (0..64).collect();
        let mut out = Vec::new();
        let mut cost = Cost::new();
        engine.pull(&keys, 1, &mut out, &mut cost);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let e = Arc::clone(&engine);
                let keys = keys.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    let mut cost = Cost::new();
                    for b in 2..12 {
                        out.clear();
                        e.pull(&keys, b, &mut out, &mut cost);
                        assert_eq!(out.len(), 64 * DIM, "{}", e.name());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.num_keys(), 64, "{}", engine.name());
    }
}
