//! Property-based crash consistency at the PS-node level: whatever the
//! training history, cache pressure, checkpoint cadence, and crash seed,
//! recovery always reconstructs exactly the committed checkpoint's
//! state.

use openembedding::core::recovery::recover_node;
use openembedding::prelude::*;
use openembedding::simdevice::Media;
use proptest::prelude::*;
use std::sync::Arc;

const DIM: usize = 4;

fn node_cfg(cache_entries: usize) -> NodeConfig {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Sgd { lr: 0.25 };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    cfg
}

/// Deterministic key set for a batch: a few hot keys plus rotating cold
/// ones, so both the cache hit path and the eviction path are exercised.
fn batch_keys(b: u64, width: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = (0..4).collect(); // hot head
    keys.extend((0..width).map(|i| 10 + ((b * 7 + i * 13) % 50)));
    keys.sort_unstable();
    keys.dedup();
    keys
}

fn train_batch(node: &PsNode, b: u64, width: u64) {
    let keys = batch_keys(b, width);
    let mut out = Vec::new();
    let mut cost = Cost::new();
    node.pull(&keys, b, &mut out, &mut cost);
    node.end_pull_phase(b);
    let grads = vec![0.125f32; keys.len() * DIM];
    node.push(&keys, &grads, b, &mut cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any cache size, checkpoint cadence, history length, and crash
    /// seed: recovery lands on the last committed checkpoint and its
    /// state equals a reference run stopped there.
    #[test]
    fn recovered_state_equals_reference(
        cache_entries in 4usize..64,
        ckpt_every in 1u64..6,
        batches in 4u64..20,
        width in 4u64..20,
        seed in 0u64..500,
    ) {
        let node = PsNode::new(node_cfg(cache_entries));
        for b in 1..=batches {
            train_batch(&node, b, width);
            if b % ckpt_every == 0 {
                node.request_checkpoint(b);
            }
        }
        // One more batch so pending checkpoints can commit.
        train_batch(&node, batches + 1, width);
        let committed = node.committed_checkpoint();

        let media = Arc::new(Media::from_crash(node.pool().media().crash(seed)));
        let mut cost = Cost::new();
        let (recovered, report) =
            recover_node(media, node_cfg(cache_entries), &mut cost).expect("recoverable");
        prop_assert_eq!(report.resume_batch, committed);
        prop_assert_eq!(report.scan.corrupt, 0, "protocol never tears");

        // Reference run stopped at the committed batch.
        let reference = PsNode::new(node_cfg(cache_entries));
        for b in 1..=committed {
            train_batch(&reference, b, width);
        }
        for key in 0..60u64 {
            prop_assert_eq!(
                recovered.read_weights(key),
                reference.read_weights(key),
                "key {}", key
            );
        }
    }

    /// Crashing *before any checkpoint* recovers an empty model — no
    /// partial training state ever leaks.
    #[test]
    fn no_checkpoint_recovers_empty(batches in 1u64..8, seed in 0u64..100) {
        let node = PsNode::new(node_cfg(16));
        for b in 1..=batches {
            train_batch(&node, b, 8);
        }
        let media = Arc::new(Media::from_crash(node.pool().media().crash(seed)));
        let mut cost = Cost::new();
        let (recovered, report) = recover_node(media, node_cfg(16), &mut cost).expect("recoverable");
        prop_assert_eq!(report.resume_batch, 0);
        prop_assert_eq!(recovered.num_keys(), 0, "nothing committed, nothing recovered");
    }
}
