//! Exhaustive crash-point enumeration: every persistence event (each
//! CLWB-equivalent flush and SFENCE-equivalent fence) of a reference
//! training run — multi-batch, three checkpoint commits, a changing key
//! population — is a crash point. For every index, and several
//! torn-write seeds per index, the sweep crashes, recovers through
//! `core::recovery`, and checks the five durability invariants
//! (committed-id bounds, checksum integrity, slot accounting,
//! recovery idempotence, bit-identical lossless rewind). See
//! `train::crashmc` for the invariant definitions.

use openembedding::net::{Frame, Packet, Request, Response, Standby};
use openembedding::prelude::*;
use openembedding::simdevice::Media;
use openembedding::train::crashmc::{
    capture_image, committed_bounds, recovery_crash_sweep, reference, sweep, CrashMcConfig,
};
use std::sync::Arc;

fn assert_clean_exhaustive(optimizer: OptimizerKind) {
    let cfg = CrashMcConfig::exhaustive(optimizer);
    assert_eq!(cfg.stride, 1, "exhaustive sweep covers every index");
    let rep = sweep(&cfg);
    assert!(
        rep.violations.is_empty(),
        "durability violations at enumerated crash points: {:#?}",
        rep.violations
    );
    // Coverage: every event index plus the quiescent end state, at the
    // configured torn-write fan-out.
    assert_eq!(rep.indices_checked, rep.total_events + 1);
    assert_eq!(rep.seeds_per_index, cfg.seeds_per_index);
    assert!(
        rep.total_events > 100,
        "the schedule must generate real persistence traffic, saw {}",
        rep.total_events
    );
    // Unrecoverable media is legal only before the pool root's first
    // fence (event indices 0 and 1), and index 1 only torn-write-
    // dependently — so at most 2 indices × seeds captures.
    assert!(
        rep.unrecoverable_fresh <= 2 * cfg.seeds_per_index,
        "unrecoverable media beyond the pool-root fence window: {}",
        rep.unrecoverable_fresh
    );
}

#[test]
fn exhaustive_sweep_sgd_holds_every_invariant() {
    assert_clean_exhaustive(OptimizerKind::Sgd { lr: 0.5 });
}

#[test]
fn exhaustive_sweep_adagrad_holds_every_invariant() {
    assert_clean_exhaustive(OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    });
}

#[test]
fn exhaustive_sweep_adam_holds_every_invariant() {
    // Adam's payload carries two moments plus the step counter — the
    // widest persisted state, and the one where a lossy recovery shows
    // up as a rewind divergence even when the weights look plausible.
    assert_clean_exhaustive(OptimizerKind::Adam {
        lr: 0.01,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
    });
}

#[test]
fn crash_during_recovery_is_exhaustively_idempotent() {
    let cfg = CrashMcConfig::exhaustive(OptimizerKind::Sgd { lr: 0.5 });
    let r = reference(&cfg);
    // Crash points with post-checkpoint progress: recovery must discard
    // future slots (durable `free_no_list` writes), and each of those
    // writes is itself an enumerable crash point. Sweep several source
    // crash points spread across the run.
    let mut recovery_events_seen = 0;
    for (i, at_event) in [
        r.total_events - 1,
        r.total_events - 7,
        r.total_events * 3 / 4,
        r.total_events / 2,
    ]
    .into_iter()
    .enumerate()
    {
        let rep = recovery_crash_sweep(&cfg, at_event, 101 + i as u64);
        assert!(
            rep.violations.is_empty(),
            "crash-during-recovery violations at source event {at_event}: {:#?}",
            rep.violations
        );
        assert_eq!(rep.indices_checked, rep.recovery_events);
        recovery_events_seen += rep.recovery_events;
    }
    assert!(
        recovery_events_seen > 0,
        "at least one source crash point must make recovery issue durable frees"
    );
}

#[test]
fn standby_promotes_consistently_from_enumerated_crash_points() {
    let cfg = CrashMcConfig::exhaustive(OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    });
    let r = reference(&cfg);
    // Drive `net::failover` promotion from images captured at chosen
    // crash indices: mid-run, late-run, and the final fence.
    for (i, at_event) in [
        r.total_events / 3,
        r.total_events * 4 / 5,
        r.total_events - 1,
    ]
    .into_iter()
    .enumerate()
    {
        let seed = 7 + i as u64;
        let image = capture_image(&cfg, at_event, seed);
        let media = Arc::new(Media::from_crash(image));
        let replica = CheckpointReplica::new(media, cfg.node_config(), 2, 2, seed);
        let promo = replica.promote().expect("captured image is recoverable");
        let (lo, hi) = committed_bounds(&r, at_event);
        assert!(
            promo.resume_batch >= lo && promo.resume_batch <= hi,
            "promotion at event {at_event} resumed at {} outside [{lo}, {hi}]",
            promo.resume_batch
        );
        // The promoted server must answer for exactly that checkpoint.
        let reply = promo
            .transport
            .call(Packet::request(1, 1, Request::Committed).encode(), None)
            .expect("promoted server serves");
        let resp = Packet::decode(reply).expect("well-formed response");
        assert_eq!(
            resp.frame,
            Frame::Response(Response::Committed {
                batch: promo.resume_batch
            })
        );
    }
}
