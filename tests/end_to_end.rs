//! End-to-end integration: the full pipeline (workload → pull → DeepFM →
//! push → checkpoint) across crates.

use openembedding::prelude::*;

fn spec(workers: usize) -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 8_000,
        fields: 6,
        batch_size: 128,
        workers,
        skew: SkewModel::paper_fit(),
        seed: 21,
        drift_keys_per_batch: 0,
    }
}

fn oe_node(dim: usize, cache_entries: usize) -> PsNode {
    let mut cfg = NodeConfig::small(dim);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = cache_entries * cfg.bytes_per_cached_entry();
    PsNode::new(cfg)
}

#[test]
fn deepfm_on_oe_converges() {
    let node = oe_node(8, 2_000);
    let gen = WorkloadGen::new(spec(2));
    let mut cfg = TrainerConfig::paper(2);
    cfg.mode = TrainMode::DeepFm(DeepFmConfig {
        dim: 8,
        fields: 6,
        dense_features: 0,
        hidden: vec![16],
        dense_lr: 0.02,
        seed: 4,
    });
    let mut t = SyncTrainer::new(&node, &gen, cfg);
    // The very first batch is untrained (≈ chance); convergence to the
    // teacher's structure happens within a few batches.
    let first = t.run(1, 1).avg_loss.unwrap();
    let last = t.run(2, 40).avg_loss.unwrap();
    assert!(last < first - 0.05, "loss fell: {first} → {last}");
    assert!(last < 0.62, "beats chance comfortably: {last}");
}

#[test]
fn cache_hit_rate_reflects_skew() {
    // A cache holding ~2% of keys catches the hot head. The key stream
    // is a pure function of the spec seed (splitmix64 inside
    // `WorkloadGen`), so the miss rate is an exact replayable number
    // (0.3225 here) rather than a draw from whichever `rand` backs the
    // build — the old one-sided `< 0.35` slack for alternative RNGs is
    // gone. An ideal LRU of the same capacity on this exact stream
    // gives 0.3245 (misses are per *deduped* key per worker batch, so
    // the cold tail weighs far more than its per-access share), which
    // pins both sides: well under it means the PS cache at least
    // matches ideal LRU; well over zero means the cold tail still
    // churns.
    let node = oe_node(8, 160);
    let gen = WorkloadGen::new(spec(2));
    let mut t = SyncTrainer::new(&node, &gen, TrainerConfig::paper(2));
    t.run(1, 5); // warm up
    let r = t.run(6, 30);
    let miss = r.miss_rate();
    assert!(miss < 0.33, "hot head cached: miss = {miss}");
    assert!(
        miss > 0.30,
        "cold tail misses deterministically: miss = {miss}"
    );
}

#[test]
fn periodic_checkpoints_commit_and_are_cheap() {
    let node = oe_node(8, 2_000);
    let gen = WorkloadGen::new(spec(2));
    let mut cfg = TrainerConfig::paper(2);
    // Checkpoint roughly every few batches of virtual time (batches run
    // ~2 ms virtual at this scale).
    cfg.ckpt = CheckpointScheduler::every(6_000_000);
    let mut t = SyncTrainer::new(&node, &gen, cfg);
    let r = t.run(1, 30);
    assert!(
        r.checkpoints_taken >= 3,
        "{} checkpoints",
        r.checkpoints_taken
    );
    assert!(r.committed_checkpoint > 0);
    // Batch-aware checkpointing costs ~nothing inline.
    let pause_frac = r.phases.ckpt_pause_ns as f64 / r.total_ns as f64;
    assert!(pause_frac < 0.01, "pause fraction {pause_frac}");
}

#[test]
fn all_engines_run_the_same_pipeline() {
    let gen = WorkloadGen::new(spec(2));
    let mut node_cfg = NodeConfig::small(8);
    node_cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
    node_cfg.cache_bytes = 500 * node_cfg.bytes_per_cached_entry();

    let oe = PsNode::new(node_cfg.clone());
    let dram = DramPs::new(node_cfg.clone(), CkptDevice::Ssd);
    let ori = OriCache::new(node_cfg.clone(), CkptDevice::Pmem);
    let hash = PmemHash::new(node_cfg.clone());
    let tf = TfPs::new(node_cfg.clone(), CkptDevice::Ssd);
    let engines: Vec<&dyn PsEngine> = vec![&oe, &dram, &ori, &hash, &tf];
    let mut times = Vec::new();
    for e in engines {
        let mut t = SyncTrainer::new(e, &gen, TrainerConfig::paper(2));
        let r = t.run(1, 10);
        assert_eq!(r.stats.pulls, r.stats.pushes, "{}", e.name());
        times.push((e.name(), r.total_ns));
    }
    // Sanity ordering at low worker count: DRAM fastest, PMem-Hash slowest.
    let t_of = |n: &str| times.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(t_of("DRAM-PS") < t_of("PMem-Hash"));
    assert!(t_of("PMem-OE") < t_of("PMem-Hash"));
}

#[test]
fn cluster_of_nodes_trains_identically_to_single_node() {
    let gen = WorkloadGen::new(spec(1));
    let mk_cfg = || {
        let mut c = NodeConfig::small(4);
        c.optimizer = OptimizerKind::Sgd { lr: 0.5 };
        c.cache_bytes = 1000 * c.bytes_per_cached_entry();
        c
    };
    let single = PsNode::new(mk_cfg());
    let cluster = Cluster::new((0..3).map(|_| PsNode::new(mk_cfg())).collect());

    let mut t1 = SyncTrainer::new(&single, &gen, TrainerConfig::paper(1));
    t1.run(1, 10);
    let mut t2 = SyncTrainer::new(&cluster, &gen, TrainerConfig::paper(1));
    t2.run(1, 10);

    for key in 0..200u64 {
        assert_eq!(
            single.read_weights(key),
            cluster.read_weights(key),
            "key {key}"
        );
    }
}
