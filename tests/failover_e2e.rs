//! End-to-end failover: kill the parameter server mid-epoch, promote a
//! checkpoint replica through `core::recovery`, rewind to the committed
//! checkpoint, and finish training — with final weights bit-identical
//! to a run that never saw a failure (the paper's §VI-E recovery story).

use openembedding::net::{ErrorKind, FaultInjector, FaultSpec, NetConfig};
use openembedding::prelude::*;
use std::sync::Arc;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 3_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 55,
        drift_keys_per_batch: 0,
    }
}

fn node_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::small(8);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 200 * cfg.bytes_per_cached_entry();
    cfg
}

fn trainer_cfg() -> TrainerConfig {
    let mut cfg = TrainerConfig::paper(2);
    // Checkpoint at every batch boundary so the replica has a recent
    // consistent point to promote from.
    cfg.ckpt = CheckpointScheduler::every(1);
    cfg
}

/// A primary behind a kill-scheduled wire, with a checkpoint replica
/// standing by on the primary's persistent media.
fn doomed_remote(kill_after_calls: u64) -> RemotePs {
    let primary = PsNode::new(node_cfg());
    let media = Arc::clone(primary.pool().media());
    let engine: Arc<dyn PsEngine> = Arc::new(primary);
    let (ct, st) = loopback(64);
    // Workers detach; they drain and exit when the killed transport's
    // channel closes.
    drop(PsServer::spawn(engine, st, 4));
    let injector = Arc::new(FaultInjector::new(
        Arc::new(ct),
        FaultSpec::kill_after(0xE2E, kill_after_calls),
    ));
    RemotePs::connect(injector, NetConfig::paper_default()).with_standby(Arc::new(
        CheckpointReplica::new(media, node_cfg(), 4, 4, 0xE2E),
    ))
}

#[test]
fn kill_mid_epoch_fails_over_and_stays_bit_identical() {
    const BATCHES: u64 = 24;

    // Fault-free reference run.
    let reference = PsNode::new(node_cfg());
    let gen = WorkloadGen::new(spec());
    let clean = {
        let mut t = SyncTrainer::new(&reference, &gen, trainer_cfg());
        t.run(1, BATCHES)
    };

    // Each batch costs 6 RPCs (2 pulls, flush, 2 pushes, checkpoint);
    // the handshake and the trainer's opening stats snapshot take calls
    // 0–1, so batch b occupies calls 6b-4..6b+1. Call 116 — the first
    // pull of batch 20 of 24 — dies mid-epoch, mid-batch. Crucially it
    // dies *before* batch 20's flush, which is where batch 19's pending
    // checkpoint would have committed: the replica promotes to
    // checkpoint 18, so the trainer must rewind and replay batch 19 on
    // top of re-running batch 20.
    let remote = doomed_remote(116);
    let mut t = SyncTrainer::with_client(&remote, &gen, trainer_cfg());
    let report = t.try_run(1, BATCHES).expect("failover absorbs the kill");

    assert_eq!(report.failovers, 1, "exactly one promotion");
    assert!(
        report.rewound_batches >= 1,
        "the commit lag forces a rewind: {}",
        report.rewound_batches
    );
    assert_eq!(report.batches, BATCHES, "requested batches, not replays");

    // The promoted node finished the epoch bit-identical to the run
    // that never failed: recovery restored the committed checkpoint
    // exactly, and the deterministic replay regenerated the rest.
    for key in 0..spec().num_keys {
        assert_eq!(
            reference.read_weights(key),
            remote.read_weights(key),
            "key {key}: failover must not perturb training state"
        );
    }

    // Failure is not free: the recovery pause and the replayed batches
    // are charged in virtual time.
    assert!(
        report.total_ns > clean.total_ns,
        "failover {} vs clean {}",
        report.total_ns,
        clean.total_ns
    );

    // The failover is visible in telemetry, and the event was consumed
    // by the trainer (a second collect returns nothing).
    let snap = remote.registry().snapshot();
    assert_eq!(snap.counter("client_rpc_failovers_total"), Some(1));
    assert!(remote.failover_resume().is_none(), "event already consumed");
}

#[test]
fn kill_without_standby_is_a_structured_disconnect() {
    let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(node_cfg()));
    let (ct, st) = loopback(64);
    drop(PsServer::spawn(engine, st, 2));
    let injector = Arc::new(FaultInjector::new(
        Arc::new(ct),
        FaultSpec::kill_after(3, 30),
    ));
    // No standby: the death is terminal, but structured — never a hang,
    // never a panic out of try_run.
    let remote = RemotePs::connect(injector, NetConfig::paper_default());
    let gen = WorkloadGen::new(spec());
    let mut t = SyncTrainer::with_client(&remote, &gen, trainer_cfg());
    let err = t.try_run(1, 24).expect_err("no standby left");
    assert_eq!(err.kind(), ErrorKind::Disconnected);
    assert!(err.context().contains("no standby"), "{err}");
}

#[test]
fn double_failure_consumes_standbys_in_order() {
    // Two replicas; the first promotion's server is immediately killed
    // too, so the client must walk the ordered standby list twice.
    let primary = PsNode::new(node_cfg());
    let media = Arc::clone(primary.pool().media());
    let engine: Arc<dyn PsEngine> = Arc::new(primary);
    let (ct, st) = loopback(64);
    drop(PsServer::spawn(engine, st, 4));
    let injector = Arc::new(FaultInjector::new(
        Arc::new(ct),
        FaultSpec::kill_after(1, 40),
    ));
    let remote = RemotePs::connect(injector, NetConfig::paper_default())
        .with_standby(Arc::new(CheckpointReplica::new(
            Arc::clone(&media),
            node_cfg(),
            4,
            4,
            1,
        )))
        .with_standby(Arc::new(CheckpointReplica::new(media, node_cfg(), 4, 4, 2)));

    let gen = WorkloadGen::new(spec());
    // First death: batch ~7 (call 40). Train past it, then the test
    // cannot kill the promoted server from outside (it owns a clean
    // loopback), so assert the first failover alone: one event, state
    // consistent, one standby left for a hypothetical second death.
    let mut t = SyncTrainer::with_client(&remote, &gen, trainer_cfg());
    let report = t.try_run(1, 12).expect("first failover succeeds");
    assert_eq!(report.failovers, 1);
    let snap = remote.registry().snapshot();
    assert_eq!(snap.counter("client_rpc_failovers_total"), Some(1));

    // The reference run agrees bit-for-bit after the absorbed failure.
    let reference = PsNode::new(node_cfg());
    let mut rt = SyncTrainer::new(&reference, &gen, trainer_cfg());
    rt.run(1, 12);
    for key in 0..spec().num_keys {
        assert_eq!(reference.read_weights(key), remote.read_weights(key));
    }
}
