//! Fault-injection suite: training over a seeded lossy wire (dropped
//! frames, bit flips, duplicated deliveries) must finish with weights
//! **bit-identical** to a fault-free run — retries with per-request
//! idempotence tokens plus the server's replay cache make every logical
//! request apply exactly once, and the frame checksum turns every bit
//! flip into a retryable structured error instead of silent weight
//! corruption.

use openembedding::net::{ErrorKind, FaultInjector, FaultSpec, NetConfig};
use openembedding::prelude::*;
use std::sync::Arc;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 3_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 55,
        drift_keys_per_batch: 0,
    }
}

fn node_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::small(8);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 200 * cfg.bytes_per_cached_entry();
    cfg
}

/// Remote PS behind a fault-injected loopback wire.
fn faulty_remote(fault: FaultSpec) -> (RemotePs, openembedding::net::ServerHandle) {
    let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(node_cfg()));
    let (ct, st) = loopback(32);
    let handle = PsServer::spawn(engine, st, 4);
    let injector = Arc::new(FaultInjector::new(Arc::new(ct), fault));
    (
        RemotePs::connect(injector, NetConfig::paper_default()),
        handle,
    )
}

fn train_remote(remote: &RemotePs, batches: u64) -> TrainReport {
    let gen = WorkloadGen::new(spec());
    let mut t = SyncTrainer::with_client(remote, &gen, TrainerConfig::paper(2));
    t.try_run(1, batches)
        .expect("lossy wire must be survivable")
}

fn train_local(batches: u64) -> (PsNode, TrainReport) {
    let node = PsNode::new(node_cfg());
    let gen = WorkloadGen::new(spec());
    let r = {
        let mut t = SyncTrainer::new(&node, &gen, TrainerConfig::paper(2));
        t.run(1, batches)
    };
    (node, r)
}

/// The acceptance schedule: 5% frame loss + 1% bit flips (+ occasional
/// duplicate deliveries), seeded. Training completes and the final
/// weights are bit-identical to a fault-free run.
#[test]
fn lossy_wire_training_is_bit_identical_to_fault_free() {
    let (local, clean) = train_local(30);
    let (remote, _h) = faulty_remote(FaultSpec::lossy(0xFA17, 0.05, 0.01));
    let report = train_remote(&remote, 30);

    assert_eq!(report.failovers, 0, "lossy ≠ dead: no failover");
    for key in 0..spec().num_keys {
        assert_eq!(
            local.read_weights(key),
            remote.read_weights(key),
            "key {key}: faults must not perturb training state"
        );
    }
    // Exactly-once all the way down: the server-side counters agree
    // with the fault-free run — replayed/duplicated requests were
    // cache hits, not re-executions.
    assert_eq!(local.stats(), remote.stats(), "same effective counters");

    // The faults were real and visible in telemetry.
    let snap = remote.registry().snapshot();
    let retries = snap.counter("client_rpc_retries_total").unwrap_or(0);
    let timeouts = snap.counter("client_rpc_timeouts_total").unwrap_or(0);
    let corrupt = snap.counter("client_rpc_corrupt_total").unwrap_or(0);
    assert!(retries > 0, "a 5% drop schedule must force retries");
    assert!(timeouts > 0, "dropped frames surface as timeouts");
    assert!(corrupt > 0, "bit flips surface as corrupt frames");
    let text = remote.metrics_text();
    assert!(text.contains("rpc_replay_hits_total"), "{text}");
    assert!(
        text.contains("client_rpc_retries_total"),
        "client counters lead the exposition:\n{text}"
    );

    // Retries are not free: backoff waits are charged in virtual time.
    assert!(
        report.total_ns > clean.total_ns,
        "lossy {} vs clean {}",
        report.total_ns,
        clean.total_ns
    );
}

/// Control arm: a fault spec with all probabilities at zero behaves
/// exactly like a clean wire — no retries, no injected faults.
#[test]
fn control_arm_injects_nothing() {
    let (local, _) = train_local(10);
    let (remote, _h) = faulty_remote(FaultSpec::none(1));
    train_remote(&remote, 10);
    for key in 0..spec().num_keys {
        assert_eq!(local.read_weights(key), remote.read_weights(key));
    }
    let snap = remote.registry().snapshot();
    assert_eq!(snap.counter("client_rpc_retries_total").unwrap_or(0), 0);
    assert_eq!(snap.counter("client_rpc_failovers_total").unwrap_or(0), 0);
}

/// The same seed reproduces the same fault schedule and therefore the
/// same virtual-time outcome — determinism is what makes bit-identity
/// a meaningful assertion.
#[test]
fn fault_schedule_is_deterministic_end_to_end() {
    let run = || {
        let (remote, _h) = faulty_remote(FaultSpec::lossy(77, 0.10, 0.02));
        let r = train_remote(&remote, 12);
        let snap = remote.registry().snapshot();
        (r.total_ns, snap.counter("client_rpc_retries_total"))
    };
    assert_eq!(run(), run());
}

/// A hostile wire (every frame corrupted) exhausts the retry budget
/// with a structured, classified error — never a panic, never a hang.
#[test]
fn hopeless_wire_fails_structurally() {
    let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(node_cfg()));
    let (ct, st) = loopback(32);
    let _h = PsServer::spawn(engine, st, 2);
    let spec = FaultSpec {
        corrupt_response: 1.0,
        ..FaultSpec::none(5)
    };
    let injector = Arc::new(FaultInjector::new(Arc::new(ct), spec));
    let err = RemotePs::try_connect(injector, NetConfig::paper_default())
        .expect_err("all-corrupt wire cannot handshake");
    assert_eq!(err.kind(), ErrorKind::Corrupt);
    assert!(err.context().contains("retry budget"), "{err}");
}
