//! End-to-end pipelined training: the staleness-0 pipelined schedule
//! must be bit-identical to the synchronous trainer — same weights,
//! same engine counters, same virtual nanoseconds — for every
//! optimizer; bounded staleness must strictly improve virtual time
//! while keeping the conflict accounting honest; and placement-plane
//! cutovers must invalidate prefetched rows for moved keys exactly
//! once.

use openembedding::cache::PrefetchCache;
use openembedding::prelude::*;

const DIM: usize = 8;

fn spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 4_000,
        fields: 6,
        batch_size: 128,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed,
        drift_keys_per_batch: 0,
    }
}

fn node_with(opt: OptimizerKind) -> PsNode {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = opt;
    cfg.cache_bytes = 400 * cfg.bytes_per_cached_entry();
    PsNode::new(cfg)
}

fn optimizers() -> Vec<(&'static str, OptimizerKind)> {
    vec![
        ("sgd", OptimizerKind::Sgd { lr: 0.1 }),
        (
            "adagrad",
            OptimizerKind::Adagrad {
                lr: 0.05,
                eps: 1e-8,
            },
        ),
        (
            "adam",
            OptimizerKind::Adam {
                lr: 0.01,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
            },
        ),
    ]
}

/// staleness = 0 reproduces the synchronous trainer bit-for-bit:
/// weights, logical counters, and the virtual clock all agree, for
/// every optimizer (optimizer state is the part an out-of-order or
/// double-applied gradient would corrupt first).
#[test]
fn staleness_zero_bit_identical_to_sync_across_optimizers() {
    for (name, opt) in optimizers() {
        let sync_node = node_with(opt);
        let gen = WorkloadGen::new(spec(21));
        let mut sync = SyncTrainer::new(&sync_node, &gen, TrainerConfig::paper(2));
        let sr = sync.run(1, 20);

        let pipe_node = node_with(opt);
        let mut pipe = PipelinedTrainer::new(
            &pipe_node,
            spec(21),
            TrainerConfig::paper(2),
            PipelineConfig::sync(),
        );
        let pr = pipe.run(1, 20);

        assert_eq!(sr.total_ns, pr.train.total_ns, "{name}: virtual time");
        assert_eq!(sr.stats, pr.train.stats, "{name}: engine counters");
        assert_eq!(sr.phases, pr.train.phases, "{name}: phase breakdown");
        assert_eq!(
            pr.stale_read_occurrences, 0,
            "{name}: sync has no staleness"
        );
        assert_eq!(pr.prefetch_hits, 0, "{name}: no cache at staleness 0");
        for k in 0..spec(21).num_keys {
            assert_eq!(
                sync_node.read_weights(k),
                pipe_node.read_weights(k),
                "{name}: weights of key {k}"
            );
        }
    }
}

/// The checkpointed variant: barriers drain the queue, so a committed
/// checkpoint never misses a gradient, and at staleness 0 the entire
/// checkpoint schedule matches the sync trainer batch for batch.
#[test]
fn staleness_zero_checkpoint_schedule_matches_sync() {
    let mk_cfg = || {
        let mut cfg = TrainerConfig::paper(2);
        cfg.ckpt = CheckpointScheduler::every(2);
        cfg
    };
    let sync_node = node_with(OptimizerKind::Sgd { lr: 0.1 });
    let gen = WorkloadGen::new(spec(9));
    let sr = SyncTrainer::new(&sync_node, &gen, mk_cfg()).run(1, 12);

    let pipe_node = node_with(OptimizerKind::Sgd { lr: 0.1 });
    let pr =
        PipelinedTrainer::new(&pipe_node, spec(9), mk_cfg(), PipelineConfig::sync()).run(1, 12);

    assert_eq!(sr.total_ns, pr.train.total_ns);
    assert_eq!(sr.checkpoints_taken, pr.train.checkpoints_taken);
    assert_eq!(sr.committed_checkpoint, pr.train.committed_checkpoint);
}

/// Bounded staleness strictly improves virtual time on this
/// pull/push-heavy shape, hides work under the GPU lane, reports a
/// real prefetch hit rate, and counts its stale reads.
#[test]
fn bounded_staleness_improves_virtual_time() {
    let run = |pcfg: PipelineConfig| {
        let n = node_with(OptimizerKind::Adagrad {
            lr: 0.05,
            eps: 1e-8,
        });
        PipelinedTrainer::new(&n, spec(33), TrainerConfig::paper(2), pcfg).run(1, 40)
    };
    let sync = run(PipelineConfig::sync());
    for k in [1usize, 2, 4] {
        let r = run(PipelineConfig::bounded(k, 8192));
        assert!(
            r.train.total_ns < sync.train.total_ns,
            "staleness {k} beats sync: {} vs {}",
            r.train.total_ns,
            sync.train.total_ns
        );
        assert!(
            r.prefetch_hit_rate > 0.5,
            "staleness {k}: {}",
            r.prefetch_hit_rate
        );
        assert!(
            r.stale_read_occurrences > 0,
            "staleness {k} admits staleness"
        );
        assert!(r.hidden_ns > 0);
    }
}

/// Prefetch-cache accounting across seeds: every served key occurrence
/// is classified as exactly one of hit or miss (their sum equals the
/// number of unique keys served per worker per batch), and residency
/// never exceeds capacity.
#[test]
fn prefetch_counters_sum_to_total_accesses_across_seeds() {
    for seed in [3u64, 21, 777] {
        let n = node_with(OptimizerKind::Sgd { lr: 0.1 });
        let mut t = PipelinedTrainer::new(
            &n,
            spec(seed),
            TrainerConfig::paper(2),
            PipelineConfig::bounded(2, 1024),
        );
        let r = t.run(1, 25);

        let gen = WorkloadGen::new(spec(seed));
        let expected: u64 = (1..=25u64)
            .flat_map(|b| (0..2usize).map(move |w| (b, w)))
            .map(|(b, w)| gen.worker_batch(b, w).unique_keys.len() as u64)
            .sum();
        assert_eq!(
            r.prefetch_hits + r.prefetch_misses,
            expected,
            "seed {seed}: every access is exactly one of hit/miss"
        );
        assert!(r.prefetch_hits > 0, "seed {seed}");
        assert!(r.prefetch_misses > 0, "seed {seed}: the cold tail streams");
    }
}

/// A mid-epoch shard-migration cutover invalidates prefetched rows for
/// moved keys exactly once — the drain is destructive, a second fence
/// drops nothing — and the pipelined run over the migrated cluster
/// produces the same weights as an unmigrated one.
#[test]
fn migration_cutover_invalidates_prefetched_keys_exactly_once() {
    let cluster_with = |nodes: usize| -> PlacedCluster<PsNode> {
        let mut cfg = NodeConfig::small(DIM);
        cfg.optimizer = OptimizerKind::Sgd { lr: 0.1 };
        cfg.cache_bytes = 400 * cfg.bytes_per_cached_entry();
        PlacedCluster::new((0..nodes).map(|_| PsNode::new(cfg.clone())).collect())
    };

    // -- unit-level exactly-once: cutover → drain → fence → empty --
    let cluster = cluster_with(3);
    let moves: Vec<(u64, usize)> = (0..spec(77).num_keys)
        .filter(|&k| cluster.node_of(k) == 0)
        .take(64)
        .map(|k| (k, 1))
        .collect();
    assert!(moves.len() > 10);
    let mut cost = Cost::new();
    // Seed the keys so the migration has entries to copy.
    let keys: Vec<u64> = moves.iter().map(|&(k, _)| k).collect();
    let mut out = Vec::new();
    cluster.pull(&keys, 1, &mut out, &mut cost);
    cluster.end_pull_phase(1);
    cluster.push(&keys, &vec![0.01; keys.len() * DIM], 1, &mut cost);
    cluster.start_migration(
        MigrationSpec {
            moves: moves.clone(),
            double_write_batches: 2,
        },
        1,
        &mut cost,
    );
    // Drive batches through the double-write window to the cutover.
    for b in 2..=4u64 {
        cluster.pull(&keys, b, &mut out, &mut cost);
        cluster.end_pull_phase(b);
        cluster.push(&keys, &vec![0.01; keys.len() * DIM], b, &mut cost);
    }
    assert!(!cluster.migration_active(), "window closed");
    let moved = cluster.drain_moved_keys();
    assert_eq!(moved.len(), moves.len(), "every moved key surfaced");

    let mut cache = PrefetchCache::new(256, DIM);
    let sketch: std::collections::HashMap<u64, u64> = keys.iter().map(|&k| (k, 10)).collect();
    let resident = moved
        .iter()
        .filter(|&&k| cache.insert(k, &[0.5; DIM], &sketch))
        .count() as u64;
    assert!(resident > 0);
    assert_eq!(cache.invalidate(&moved), resident, "first fence drops all");
    assert_eq!(cache.invalidate(&moved), 0, "second fence drops nothing");
    assert!(
        cluster.drain_moved_keys().is_empty(),
        "drain is destructive: moved keys surface exactly once"
    );

    // -- trainer-integrated: migration is invisible to training --
    let migrated = cluster_with(3);
    let reference = cluster_with(3);
    let moves: Vec<(u64, usize)> = (0..spec(77).num_keys)
        .filter(|&k| migrated.node_of(k) == 0)
        .map(|k| (k, 1 + (k as usize % 2)))
        .collect();
    let mk = || {
        let mut cfg = TrainerConfig::paper(2);
        cfg.mode = TrainMode::Synthetic { grad_scale: 0.01 };
        cfg
    };
    let report_m = {
        let mut t =
            PipelinedTrainer::new(&migrated, spec(77), mk(), PipelineConfig::bounded(2, 2048));
        t.set_coherence(&migrated);
        t.try_run_with_hook(1, 24, |b| {
            if b == 8 {
                let n = migrated.start_migration(
                    MigrationSpec {
                        moves: moves.clone(),
                        double_write_batches: 4,
                    },
                    8,
                    &mut Cost::new(),
                );
                assert!(n > 0);
            }
        })
        .expect("in-process cluster is infallible")
    };
    let report_r = {
        let mut t =
            PipelinedTrainer::new(&reference, spec(77), mk(), PipelineConfig::bounded(2, 2048));
        t.run(1, 24)
    };

    assert!(!migrated.migration_active());
    assert!(
        migrated.drain_moved_keys().is_empty(),
        "the trainer's coherence drain consumed the moved keys"
    );
    assert!(
        report_m.prefetch_invalidations >= report_r.prefetch_invalidations,
        "the cutover fence added invalidations: {} vs {}",
        report_m.prefetch_invalidations,
        report_r.prefetch_invalidations
    );
    for k in 0..spec(77).num_keys {
        assert_eq!(
            migrated.read_weights(k),
            reference.read_weights(k),
            "key {k} diverged across the migration"
        );
    }
}
