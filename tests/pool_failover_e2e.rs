//! End-to-end failover over the disaggregated pool: kill a pool-backed
//! parameter server mid-epoch, promote a [`PoolStandby`] that recovers
//! from the pool-resident durable bytes (no crash image crosses the
//! network), rewind to the committed checkpoint, and finish training —
//! with final weights bit-identical to a local fault-free run. The
//! second half sweeps crash points *during* pool-resident recovery
//! itself, crashmc-style: the recovery scan's durable frees are
//! enumerable persistence events, and interrupting any of them must
//! leave the partition recoverable to the identical state.

use openembedding::net::{FaultInjector, FaultSpec, NetConfig, PsServer, Standby};
use openembedding::pmem::scan::recover as pmem_recover;
use openembedding::pmem::PoolConfig;
use openembedding::prelude::*;
use openembedding::simdevice::{CrashPlan, Media};
use std::collections::BTreeSet;
use std::sync::Arc;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 3_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 55,
        drift_keys_per_batch: 0,
    }
}

fn node_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::small(8);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 200 * cfg.bytes_per_cached_entry();
    cfg
}

fn trainer_cfg() -> TrainerConfig {
    let mut cfg = TrainerConfig::paper(2);
    cfg.ckpt = CheckpointScheduler::every(1);
    cfg
}

/// A PS node whose slots live in `shared`'s partition `node_id`.
fn pool_node(shared: &Arc<SharedPool>, node_id: u64) -> PsNode {
    let mut cost = Cost::new();
    let cfg = node_cfg();
    let store = shared.create_partition(
        node_id,
        PoolConfig {
            payload_bytes: cfg.payload_bytes(),
            capacity: cfg.pmem_capacity,
        },
        &mut cost,
    );
    PsNode::with_storage(cfg, Arc::new(store))
}

/// A pool-backed primary behind a kill-scheduled wire, with a
/// [`PoolStandby`] ready to promote across the pool.
fn doomed_remote(shared: &Arc<SharedPool>, kill_after_calls: u64) -> RemotePs {
    let primary = pool_node(shared, 7);
    let engine: Arc<dyn PsEngine> = Arc::new(primary);
    let (ct, st) = loopback(64);
    // Workers detach; they drain and exit when the killed transport's
    // channel closes.
    drop(PsServer::spawn(engine, st, 4));
    let injector = Arc::new(FaultInjector::new(
        Arc::new(ct),
        FaultSpec::kill_after(0xE2E, kill_after_calls),
    ));
    RemotePs::connect(injector, NetConfig::paper_default()).with_standby(Arc::new(
        PoolStandby::new(Arc::clone(shared), 7, node_cfg(), 4, 0xE2E),
    ))
}

#[test]
fn kill_mid_epoch_promotes_across_the_pool_bit_identical() {
    const BATCHES: u64 = 24;

    // Fault-free reference on *local* PMem: passing this comparison
    // also re-proves the RemotePool storage arm is value-identical to
    // the local arm (the fabric charges live purely in virtual time).
    let reference = PsNode::new(node_cfg());
    let gen = WorkloadGen::new(spec());
    let clean = {
        let mut t = SyncTrainer::new(&reference, &gen, trainer_cfg());
        t.run(1, BATCHES)
    };

    // Same call schedule as the local-media failover e2e: 6 RPCs per
    // batch after the handshake + opening stats, so call 116 is the
    // first pull of batch 20 — before the flush where batch 19's
    // pending checkpoint would commit, forcing a rewind + replay.
    let shared = SharedPool::new(FabricConfig::default());
    let remote = doomed_remote(&shared, 116);
    let mut t = SyncTrainer::with_client(&remote, &gen, trainer_cfg());
    let report = t
        .try_run(1, BATCHES)
        .expect("pool failover absorbs the kill");

    assert_eq!(report.failovers, 1, "exactly one promotion");
    assert!(
        report.rewound_batches >= 1,
        "the commit lag forces a rewind: {}",
        report.rewound_batches
    );
    assert_eq!(report.batches, BATCHES, "requested batches, not replays");

    // The promoted node finished the epoch bit-identical to the
    // fault-free local run: the pool-resident bytes restored the
    // committed checkpoint exactly and the deterministic replay
    // regenerated the rest.
    for key in 0..spec().num_keys {
        assert_eq!(
            reference.read_weights(key),
            remote.read_weights(key),
            "key {key}: pool failover must not perturb training state"
        );
    }

    // Failure is not free, and neither is the fabric: recovery pause,
    // replayed batches, and per-op fabric charges all land in virtual
    // time.
    assert!(
        report.total_ns > clean.total_ns,
        "pool failover {} vs clean local {}",
        report.total_ns,
        clean.total_ns
    );

    let snap = remote.registry().snapshot();
    assert_eq!(snap.counter("client_rpc_failovers_total"), Some(1));
    assert!(remote.failover_resume().is_none(), "event already consumed");
}

#[test]
fn standby_for_a_foreign_partition_never_promotes() {
    // The standby names partition 13; the primary owns partition 7. A
    // misconfigured standby must fail promotion cleanly (structured
    // disconnect after the standby list is exhausted), never serve
    // another node's bytes.
    let shared = SharedPool::new(FabricConfig::default());
    let primary = pool_node(&shared, 7);
    let engine: Arc<dyn PsEngine> = Arc::new(primary);
    let (ct, st) = loopback(64);
    drop(PsServer::spawn(engine, st, 2));
    let injector = Arc::new(FaultInjector::new(
        Arc::new(ct),
        FaultSpec::kill_after(3, 30),
    ));
    let remote = RemotePs::connect(injector, NetConfig::paper_default()).with_standby(Arc::new(
        PoolStandby::new(Arc::clone(&shared), 13, node_cfg(), 2, 3),
    ));
    let gen = WorkloadGen::new(spec());
    let mut t = SyncTrainer::with_client(&remote, &gen, trainer_cfg());
    let err = t.try_run(1, 24).expect_err("foreign partition refuses");
    assert!(err.context().contains("no standby"), "{err}");
}

/// The recovered durable state, as comparable facts: committed id plus
/// the live `(key, version)` set.
fn recovered_facts(media: Arc<Media>) -> Option<(u64, BTreeSet<(u64, u64)>)> {
    let mut cost = Cost::new();
    let (_pool, scan) = pmem_recover(media, &mut cost)?;
    assert_eq!(scan.corrupt, 0, "no live slot fails its checksum");
    Some((
        scan.checkpoint_id,
        scan.live.iter().map(|s| (s.key, s.version)).collect(),
    ))
}

#[test]
fn crash_points_during_pool_resident_recovery_are_idempotent() {
    // Train a pool-backed node past a committed checkpoint so the
    // recovery scan has future slots to discard — each durable free it
    // issues is itself a crash point on the pool media.
    let shared = SharedPool::new(FabricConfig::default());
    let primary = pool_node(&shared, 7);
    let gen = WorkloadGen::new(spec());
    let mut t = SyncTrainer::new(&primary, &gen, trainer_cfg());
    t.run(1, 6);
    drop(t);
    let partition = shared.partition_media(7).expect("partition exists");
    drop(primary); // the node dies; its partition outlives it

    // The death itself: in-flight fabric writes resolve as torn lines.
    let death = partition.crash(0xDEAD);

    // Uninterrupted recovery baseline (counts recovery's own events).
    let base_media = Arc::new(Media::from_crash(death.clone()));
    let (base_ckpt, base_live) =
        recovered_facts(Arc::clone(&base_media)).expect("pool bytes recover");
    let recovery_events = base_media.persistence_events();
    assert!(
        recovery_events > 0,
        "post-checkpoint progress must make recovery issue durable frees"
    );
    assert!(base_ckpt > 0, "a checkpoint committed before the death");

    // Crash recovery at every one of its persistence events and
    // re-recover: committed id and live set must never move.
    for j in 0..recovery_events {
        let media = Arc::new(Media::from_crash(death.clone()));
        media.arm_crash_plan(CrashPlan {
            at_event: j,
            seed: 0xBEEF_u64.wrapping_mul(31).wrapping_add(j),
        });
        // First recovery runs to completion (the capture is taken on
        // the fly); the interrupted-at-j image is what the next
        // promotion attempt would see.
        let _ = recovered_facts(Arc::clone(&media));
        let crashed = media
            .take_crash_capture()
            .expect("recovery event index in range");
        let (ckpt, live) = recovered_facts(Arc::new(Media::from_crash(crashed)))
            .unwrap_or_else(|| panic!("recovery event {j}: unrecoverable media"));
        assert_eq!(ckpt, base_ckpt, "recovery event {j}: committed id moved");
        assert_eq!(live, base_live, "recovery event {j}: live set diverged");
    }

    // And the real promotion path still works on the original bytes:
    // the sweep above never touched the pool's authoritative partition.
    let standby = PoolStandby::new(Arc::clone(&shared), 7, node_cfg(), 2, 0xDEAD);
    let promo = standby.promote().expect("partition promotes");
    assert_eq!(promo.resume_batch, base_ckpt);
    assert_eq!(promo.recovered_keys, base_live.len());
}
