//! End-to-end live migration: a forced mid-epoch shard migration under
//! the full synchronous trainer must be invisible to training — final
//! weights, logical counters and checkpoints bit-identical to a run
//! that never migrated, with zero double-applied gradients.

use openembedding::cluster::MigrationStats;
use openembedding::prelude::*;

const DIM: usize = 8;
const NODES: usize = 3;
const BATCHES: u64 = 30;
const MIGRATE_AFTER: u64 = 10;
const WINDOW: u64 = 4;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 6_000,
        fields: 6,
        batch_size: 128,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 77,
        drift_keys_per_batch: 0,
    }
}

fn cluster() -> PlacedCluster<PsNode> {
    let mut cfg = NodeConfig::small(DIM);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 400 * cfg.bytes_per_cached_entry();
    PlacedCluster::new((0..NODES).map(|_| PsNode::new(cfg.clone())).collect())
}

fn trainer_config() -> TrainerConfig {
    let mut cfg = TrainerConfig::paper(2);
    // Batch-boundary cadence: the migrated arm pays extra virtual time
    // for its seed copies and double-writes, so a wall-clock scheduler
    // would fire at different batches in the two arms.
    cfg.ckpt = CheckpointScheduler::every(1);
    cfg
}

#[test]
fn forced_mid_epoch_migration_is_bit_identical() {
    let gen = WorkloadGen::new(spec());
    let migrated = cluster();
    let reference = cluster();

    // Drain every key that hashes onto node 0 — seeded immediately if it
    // exists by MIGRATE_AFTER, late-seeded on first push otherwise.
    let moves: Vec<(u64, usize)> = (0..spec().num_keys)
        .filter(|&k| migrated.node_of(k) == 0)
        .map(|k| (k, 1 + (k as usize % (NODES - 1))))
        .collect();
    assert!(moves.len() > 100, "plenty of keys to move: {}", moves.len());

    let report_m = {
        let mut t = SyncTrainer::new(&migrated, &gen, trainer_config());
        t.run_with_hook(1, BATCHES, |b| {
            if b == MIGRATE_AFTER {
                let n = migrated.start_migration(
                    MigrationSpec {
                        moves: moves.clone(),
                        double_write_batches: WINDOW,
                    },
                    MIGRATE_AFTER,
                    &mut Cost::new(),
                );
                assert!(n > 0, "migration accepted mid-epoch");
            }
        })
    };
    let report_r = {
        let mut t = SyncTrainer::new(&reference, &gen, trainer_config());
        t.run(1, BATCHES)
    };

    // The migration actually happened …
    assert_eq!(migrated.placement_epoch(), 1, "cutover bumped the epoch");
    assert_eq!(reference.placement_epoch(), 0);
    assert!(!migrated.migration_active(), "window closed before the end");
    let ms: MigrationStats = migrated.migration_stats();
    assert_eq!(ms.migrations, 1);
    assert!(ms.keys_moved > 0);
    assert!(
        ms.double_write_pushes > 0,
        "pushes were in flight through the window"
    );
    assert_eq!(ms.double_write_batches, WINDOW);
    for &(k, _) in &moves {
        assert_ne!(migrated.node_of(k), 0, "key {k} rerouted off node 0");
        assert!(
            migrated.node(0).read_weights(k).is_none(),
            "source forgot key {k}"
        );
    }

    // … and training never noticed: bitwise-equal weights everywhere
    // (any double-applied gradient would diverge Adagrad immediately),
    assert_eq!(report_m.batches, report_r.batches);
    for k in 0..spec().num_keys {
        assert_eq!(
            migrated.read_weights(k),
            reference.read_weights(k),
            "key {k} diverged across the migration"
        );
    }
    // … logical counters placement-invariant (double-writes subtracted),
    let (sm, sr) = (migrated.stats(), reference.stats());
    assert_eq!(sm.pulls, sr.pulls);
    assert_eq!(sm.pushes, sr.pushes);
    assert_eq!(sm.new_entries, sr.new_entries);
    assert_eq!(migrated.num_keys(), reference.num_keys());
    // … and checkpointing marched through the migration undisturbed.
    assert_eq!(report_m.checkpoints_taken, report_r.checkpoints_taken);
    assert_eq!(
        migrated.committed_checkpoint(),
        reference.committed_checkpoint()
    );
    assert!(migrated.committed_checkpoint() > 0);
}
