//! Integration: the RPC boundary is transparent — a `RemotePs` behaves
//! exactly like the engine it fronts, including under the full trainer,
//! checkpointing, and concurrent access.

use openembedding::net::NetConfig;
use openembedding::prelude::*;
use std::sync::Arc;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_keys: 3_000,
        fields: 5,
        batch_size: 64,
        workers: 2,
        skew: SkewModel::paper_fit(),
        seed: 55,
        drift_keys_per_batch: 0,
    }
}

fn node_cfg() -> NodeConfig {
    let mut cfg = NodeConfig::small(8);
    cfg.optimizer = OptimizerKind::Adagrad {
        lr: 0.05,
        eps: 1e-8,
    };
    cfg.cache_bytes = 200 * cfg.bytes_per_cached_entry();
    cfg
}

fn remote_over(engine: Arc<dyn PsEngine>) -> (RemotePs, openembedding::net::ServerHandle) {
    let (ct, st) = loopback(32);
    let handle = PsServer::spawn(engine, st, 4);
    (
        RemotePs::connect(Arc::new(ct), NetConfig::paper_default()),
        handle,
    )
}

#[test]
fn trainer_over_rpc_matches_local_bitwise() {
    let gen = WorkloadGen::new(spec());
    let local = PsNode::new(node_cfg());
    let (remote, _h) = remote_over(Arc::new(PsNode::new(node_cfg())));

    let mut t1 = SyncTrainer::new(&local, &gen, TrainerConfig::paper(2));
    t1.run(1, 10);
    let mut t2 = SyncTrainer::new(&remote, &gen, TrainerConfig::paper(2));
    let r = t2.run(1, 10);

    for key in 0..spec().num_keys {
        assert_eq!(
            local.read_weights(key),
            remote.read_weights(key),
            "key {key}"
        );
    }
    assert_eq!(local.stats(), remote.stats(), "same counters");
    assert!(r.total_ns > 0);
}

#[test]
fn rpc_adds_network_time_but_nothing_else() {
    let gen = WorkloadGen::new(spec());
    let local = PsNode::new(node_cfg());
    let (remote, _h) = remote_over(Arc::new(PsNode::new(node_cfg())));
    let mut t1 = SyncTrainer::new(&local, &gen, TrainerConfig::paper(2));
    let rl = t1.run(1, 8);
    let mut t2 = SyncTrainer::new(&remote, &gen, TrainerConfig::paper(2));
    let rr = t2.run(1, 8);
    // The remote run is strictly slower in virtual time (wire cost)…
    assert!(rr.total_ns > rl.total_ns);
    // …but not unreasonably so at this scale (< 2×).
    assert!(
        rr.total_ns < rl.total_ns * 2,
        "{} vs {}",
        rr.total_ns,
        rl.total_ns
    );
}

#[test]
fn remote_checkpoint_and_recovery_roundtrip() {
    // Checkpoint through the wire, crash the backing PMem, recover, and
    // serve the recovered node through a fresh server.
    use openembedding::core::recovery::recover_node;
    use openembedding::simdevice::Media;

    let node = Arc::new(PsNode::new(node_cfg()));
    let (remote, _h) = remote_over(node.clone() as Arc<dyn PsEngine>);
    let gen = WorkloadGen::new(spec());
    let mut t = SyncTrainer::new(&remote, &gen, TrainerConfig::paper(2));
    t.run(1, 6);
    remote.request_checkpoint(6);
    // Snapshot the exact end-of-batch-6 state: this IS the checkpoint.
    let reference: Vec<Option<Vec<f32>>> = (0..spec().num_keys)
        .map(|k| remote.read_weights(k))
        .collect();
    t.run(7, 2); // commit rides maintenance; also trains new batches
    assert_eq!(remote.committed_checkpoint(), 6);

    let media = Arc::new(Media::from_crash(node.pool().media().crash(3)));
    let mut cost = Cost::new();
    let (recovered, report) = recover_node(media, node_cfg(), &mut cost).expect("recover");
    assert_eq!(report.resume_batch, 6);

    let (remote2, _h2) = remote_over(Arc::new(recovered));
    for (k, expect) in reference.iter().enumerate() {
        let got = remote2.read_weights(k as u64);
        assert_eq!(
            expect, &got,
            "key {k}: recovered state equals the checkpoint snapshot"
        );
    }
    assert_eq!(remote2.committed_checkpoint(), 6);
}

#[test]
fn many_clients_share_one_server() {
    let engine: Arc<dyn PsEngine> = Arc::new(PsNode::new(node_cfg()));
    let (ct, st) = loopback(64);
    let _h = PsServer::spawn(engine, st, 8);
    let ct = Arc::new(ct);

    // Warm via one client.
    let first = RemotePs::connect(ct.clone(), NetConfig::paper_default());
    let keys: Vec<u64> = (0..128).collect();
    let mut out = Vec::new();
    let mut cost = Cost::new();
    first.pull(&keys, 1, &mut out, &mut cost);
    first.end_pull_phase(1);
    let expected = out.clone();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let ct = ct.clone();
            let keys = keys.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let client = RemotePs::connect(ct, NetConfig::paper_default());
                let mut out = Vec::new();
                let mut cost = Cost::new();
                for b in 2..10 {
                    out.clear();
                    client.pull(&keys, b, &mut out, &mut cost);
                    assert_eq!(out, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
